#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pdn3d::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_io_mutex);
  std::cerr << "[pdn3d " << level_tag(level) << "] " << message << '\n';
}

}  // namespace pdn3d::util
