#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "obs/event_log.hpp"
#include "util/string_util.hpp"

namespace pdn3d::util {

namespace {

/// Initial threshold: PDN3D_LOG_LEVEL when set and parseable, else kWarn.
LogLevel initial_level() {
  if (const char* env = std::getenv("PDN3D_LOG_LEVEL")) {
    LogLevel parsed = LogLevel::kWarn;
    if (parse_log_level(env, &parsed)) return parsed;
    // Parsing failures must be visible (the user asked for a level) but must
    // not recurse into the logger being initialized here.
    std::cerr << "[pdn3d WARN ] ignoring unrecognized PDN3D_LOG_LEVEL='" << env << "'\n";
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

}  // namespace

bool parse_log_level(std::string_view text, LogLevel* out) {
  const std::string t = to_lower(trim(text));
  if (t == "debug" || t == "0") *out = LogLevel::kDebug;
  else if (t == "info" || t == "1") *out = LogLevel::kInfo;
  else if (t == "warn" || t == "warning" || t == "2") *out = LogLevel::kWarn;
  else if (t == "error" || t == "3") *out = LogLevel::kError;
  else if (t == "off" || t == "none" || t == "4") *out = LogLevel::kOff;
  else return false;
  return true;
}

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view message) {
  // Routed through the structured event log (obs/event_log.hpp): a plain
  // message is a field-less event whose text rendering is byte-identical to
  // the historical `[pdn3d LEVEL] message` line.
  obs::log_event(level, message);
}

}  // namespace pdn3d::util
