#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "util/string_util.hpp"

namespace pdn3d::util {

namespace {

std::mutex g_io_mutex;

std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

/// Initial threshold: PDN3D_LOG_LEVEL when set and parseable, else kWarn.
LogLevel initial_level() {
  if (const char* env = std::getenv("PDN3D_LOG_LEVEL")) {
    LogLevel parsed = LogLevel::kWarn;
    if (parse_log_level(env, &parsed)) return parsed;
    // Parsing failures must be visible (the user asked for a level) but must
    // not recurse into the logger being initialized here.
    std::cerr << "[pdn3d WARN ] ignoring unrecognized PDN3D_LOG_LEVEL='" << env << "'\n";
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

}  // namespace

bool parse_log_level(std::string_view text, LogLevel* out) {
  const std::string t = to_lower(trim(text));
  if (t == "debug" || t == "0") *out = LogLevel::kDebug;
  else if (t == "info" || t == "1") *out = LogLevel::kInfo;
  else if (t == "warn" || t == "warning" || t == "2") *out = LogLevel::kWarn;
  else if (t == "error" || t == "3") *out = LogLevel::kError;
  else if (t == "off" || t == "none" || t == "4") *out = LogLevel::kOff;
  else return false;
  return true;
}

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_io_mutex);
  std::cerr << "[pdn3d " << level_tag(level) << "] " << message << '\n';
}

}  // namespace pdn3d::util
