#pragma once

/// @file timer.hpp
/// @brief Wall-clock stopwatch used by validation benches to report runtimes.

#include <chrono>

namespace pdn3d::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const;

  void reset();

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdn3d::util
