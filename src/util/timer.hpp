#pragma once

/// @file timer.hpp
/// @brief Wall-clock stopwatch shared by the benches and the observability
/// layer (one clock path for bench timings and trace timings).

#include <chrono>
#include <string>
#include <string_view>

namespace pdn3d::util {

class Timer {
 public:
  Timer() : start_(Clock::now()), lap_(start_) {}

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const;

  /// Seconds since the last lap_seconds() call (or construction/reset), and
  /// start a new lap. Use for per-phase timings off one stopwatch.
  [[nodiscard]] double lap_seconds();

  void reset();

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

/// Scope guard that feeds its lifetime (seconds) into the metrics registry:
/// an obs histogram named @p metric_name (time_buckets) plus a
/// `<metric_name>.count` counter. Same steady clock as Timer and the trace
/// spans, so timings from all three agree.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view metric_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far (the destructor records the final value).
  [[nodiscard]] double elapsed_seconds() const { return timer_.elapsed_seconds(); }

 private:
  std::string metric_name_;
  Timer timer_;
};

}  // namespace pdn3d::util
