#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace pdn3d::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  Row row;
  row.cells = std::move(cells);
  row.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(row));
}

void Table::add_separator() { pending_separator_ = true; }

std::string Table::render() const {
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  const auto render_sep = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < ncols; ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto render_cells = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  std::ostringstream os;
  render_sep(os);
  render_cells(os, header_);
  render_sep(os);
  for (const Row& r : rows_) {
    if (r.separator_before) render_sep(os);
    render_cells(os, r.cells);
  }
  render_sep(os);
  return os.str();
}

}  // namespace pdn3d::util
