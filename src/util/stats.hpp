#pragma once

/// @file stats.hpp
/// @brief Small descriptive-statistics helpers used by analysis and fitting.

#include <span>
#include <vector>

namespace pdn3d::util {

/// Summary of a sample: produced by summarize().
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  std::size_t count = 0;
};

double mean(std::span<const double> xs);
double max_value(std::span<const double> xs);
double min_value(std::span<const double> xs);

/// Root-mean-square of @p xs.
double rms(std::span<const double> xs);

/// Root-mean-square error between two equal-length samples.
double rmse(std::span<const double> a, std::span<const double> b);

/// Coefficient of determination of predictions @p pred against @p truth.
double r_squared(std::span<const double> truth, std::span<const double> pred);

/// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

Summary summarize(std::span<const double> xs);

}  // namespace pdn3d::util
