#pragma once

/// \file
/// Streaming FNV-1a 64-bit hashing.
///
/// The canonical-fingerprint machinery (api::RequestFingerprint,
/// util::checkpoint_key) hashes canonical *text*; the hierarchical solver
/// tier extends the same FNV-1a stream to binary sub-mesh fingerprints
/// (node counts, local indices, IEEE-754 conductance bits), where building a
/// canonical string per die block would cost more than the hash itself.
/// Both spellings share this one implementation so a fingerprint is always
/// "FNV-1a over a canonical byte stream", whatever the payload.

#include <bit>
#include <cstdint>
#include <string_view>

namespace pdn3d::util {

/// Incremental FNV-1a 64-bit hasher. Feed bytes in canonical order; value()
/// is stable across platforms (integers are hashed little-endian-explicitly,
/// doubles by their IEEE-754 bit pattern).
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  constexpr void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= kPrime;
  }

  constexpr void text(std::string_view s) {
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }

  constexpr void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
  }

  constexpr void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  [[nodiscard]] constexpr std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// One-shot FNV-1a of a text fragment (the historical checkpoint_key core).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text) {
  Fnv1a h;
  h.text(text);
  return h.value();
}

}  // namespace pdn3d::util
