#pragma once

/// @file rng.hpp
/// @brief Deterministic random number generation (PCG32).
///
/// All stochastic pieces of the platform (workload generation, design-space
/// sampling) draw from this generator so experiments are reproducible from a
/// seed alone, independent of the standard library implementation.

#include <cstdint>

namespace pdn3d::util {

/// PCG32 (O'Neill) -- small, fast, statistically solid, fully deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Independent generator for (seed, stream_id). PCG32 streams with distinct
  /// increments never share a sequence, so deriving one stream per *task
  /// index* (never per thread) makes a parallel sweep bitwise identical to
  /// its serial run at any thread count. The stream id is mixed
  /// (splitmix64-style) so adjacent ids do not yield correlated increments.
  [[nodiscard]] static Rng split(std::uint64_t seed, std::uint64_t stream_id);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability @p p (clamped to [0,1]).
  bool next_bool(double p);

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi);

  /// Geometric-ish integer >= 0 with mean roughly @p mean (for bursty gaps).
  int next_geometric(double mean);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace pdn3d::util
