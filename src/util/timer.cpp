#include "util/timer.hpp"

#include "obs/metrics.hpp"

namespace pdn3d::util {

double Timer::elapsed_seconds() const {
  const auto dt = Clock::now() - start_;
  return std::chrono::duration<double>(dt).count();
}

double Timer::lap_seconds() {
  const auto now = Clock::now();
  const double dt = std::chrono::duration<double>(now - lap_).count();
  lap_ = now;
  return dt;
}

void Timer::reset() {
  start_ = Clock::now();
  lap_ = start_;
}

ScopedTimer::ScopedTimer(std::string_view metric_name) : metric_name_(metric_name) {}

ScopedTimer::~ScopedTimer() {
  const double seconds = timer_.elapsed_seconds();
  obs::histogram(metric_name_, obs::time_buckets()).observe(seconds);
  obs::counter(metric_name_ + ".count").add(1);
}

}  // namespace pdn3d::util
