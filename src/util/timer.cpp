#include "util/timer.hpp"

namespace pdn3d::util {

double Timer::elapsed_seconds() const {
  const auto dt = Clock::now() - start_;
  return std::chrono::duration<double>(dt).count();
}

void Timer::reset() { start_ = Clock::now(); }

}  // namespace pdn3d::util
