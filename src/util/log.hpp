#pragma once

/// @file log.hpp
/// @brief Minimal leveled logger for library diagnostics.
///
/// The library is quiet by default (warnings and errors only); tools that want
/// progress output raise the level. Output goes to stderr so bench binaries
/// can keep stdout clean for table data.

#include <sstream>
#include <string>
#include <string_view>

namespace pdn3d::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. The initial level
/// comes from the PDN3D_LOG_LEVEL environment variable when set
/// ("debug" | "info" | "warn" | "error" | "off", case-insensitive), and
/// defaults to kWarn otherwise; set_log_level() overrides either.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse a level name ("debug", "info", "warn"/"warning", "error", "off",
/// case-insensitive, or a digit 0-4). Returns false on unknown input, leaving
/// @p out untouched.
bool parse_log_level(std::string_view text, LogLevel* out);

/// Emit one message at @p level (no trailing newline needed).
void log_message(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace pdn3d::util
