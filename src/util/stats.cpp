#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdn3d::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double r_squared(std::span<const double> truth, std::span<const double> pred) {
  if (truth.size() != pred.size()) throw std::invalid_argument("r_squared: size mismatch");
  if (truth.empty()) return 0.0;
  const double m = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double r = truth[i] - pred[i];
    const double t = truth[i] - m;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = min_value(xs);
  s.max = max_value(xs);
  s.mean = mean(xs);
  double var = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

}  // namespace pdn3d::util
