#include "util/checkpoint.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/fnv.hpp"

namespace pdn3d::util {

namespace {

constexpr std::string_view kMagic = "pdn3d-ckpt v1";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

bool parse_hex16(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw std::runtime_error("checkpoint " + path + ": " + why);
}

// Failure messages are stored one per line; fold any embedded newline so the
// record stays parseable (montecarlo/cooptimizer reasons are single-line).
std::string one_line(std::string message) {
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return message;
}

}  // namespace

std::uint64_t checkpoint_key(std::string_view canonical) { return fnv1a(canonical); }

SweepCheckpoint::SweepCheckpoint(std::string path, std::uint64_t key, std::uint64_t total)
    : path_(std::move(path)), key_(key), total_(total) {}

SweepCheckpoint::SweepCheckpoint(SweepCheckpoint&& other) noexcept
    : path_(std::move(other.path_)),
      key_(other.key_),
      total_(other.total_),
      flush_interval_(other.flush_interval_),
      loaded_(std::move(other.loaded_)),
      recorded_(std::move(other.recorded_)),
      unflushed_(other.unflushed_) {}

SweepCheckpoint SweepCheckpoint::open(std::string path, std::uint64_t key, std::uint64_t total,
                                      bool resume) {
  SweepCheckpoint ckpt(std::move(path), key, total);
  if (!resume) return ckpt;

  std::ifstream in(ckpt.path_);
  if (!in.is_open()) return ckpt;  // missing file: fresh start

  std::string header;
  if (!std::getline(in, header)) corrupt(ckpt.path_, "empty file");
  std::istringstream hs(header);
  std::string magic, version, key_field, total_field;
  hs >> magic >> version >> key_field >> total_field;
  if (magic + " " + version != kMagic) corrupt(ckpt.path_, "unrecognized header '" + header + "'");
  std::uint64_t file_key = 0;
  if (key_field.rfind("key=", 0) != 0 || !parse_hex16(key_field.substr(4), &file_key)) {
    corrupt(ckpt.path_, "bad key field '" + key_field + "'");
  }
  if (file_key != key) {
    corrupt(ckpt.path_, "key mismatch (file " + key_field.substr(4) + ", run " + hex16(key) +
                            ") — the checkpoint was written by a different configuration");
  }
  std::uint64_t file_total = 0;
  if (total_field.rfind("total=", 0) != 0 ||
      std::sscanf(total_field.c_str() + 6, "%" SCNu64, &file_total) != 1) {
    corrupt(ckpt.path_, "bad total field '" + total_field + "'");
  }
  if (total != 0 && file_total != 0 && file_total != total) {
    corrupt(ckpt.path_, "sweep size mismatch (file total=" + std::to_string(file_total) +
                            ", run total=" + std::to_string(total) + ")");
  }

  std::string line;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::uint64_t index = 0;
    std::string tag;
    if (!(ls >> index >> tag)) corrupt(ckpt.path_, "bad entry at line " + std::to_string(line_no));
    if (total != 0 && index >= total) {
      corrupt(ckpt.path_, "entry index " + std::to_string(index) + " out of range at line " +
                              std::to_string(line_no));
    }
    CheckpointEntry entry;
    if (tag == "ok") {
      std::string bits;
      std::uint64_t raw = 0;
      if (!(ls >> bits) || !parse_hex16(bits, &raw)) {
        corrupt(ckpt.path_, "bad ok entry at line " + std::to_string(line_no));
      }
      entry.ok = true;
      entry.value = std::bit_cast<double>(raw);
    } else if (tag == "fail") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      entry.message = rest;
    } else {
      corrupt(ckpt.path_, "unknown entry tag '" + tag + "' at line " + std::to_string(line_no));
    }
    ckpt.loaded_[index] = std::move(entry);
  }
  return ckpt;
}

const CheckpointEntry* SweepCheckpoint::find(std::uint64_t index) const {
  const auto it = loaded_.find(index);
  return it == loaded_.end() ? nullptr : &it->second;
}

void SweepCheckpoint::record(std::uint64_t index, CheckpointEntry entry) {
  if (!entry.ok) entry.message = one_line(std::move(entry.message));
  std::lock_guard<std::mutex> lock(mutex_);
  recorded_[index] = std::move(entry);
  if (++unflushed_ >= flush_interval_) flush_locked();
}

void SweepCheckpoint::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

void SweepCheckpoint::flush_locked() {
  unflushed_ = 0;
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) throw std::runtime_error("checkpoint: cannot write " + tmp);
    out << kMagic << " key=" << hex16(key_) << " total=" << total_ << "\n";
    const auto dump = [&out](const std::map<std::uint64_t, CheckpointEntry>& entries,
                             const std::map<std::uint64_t, CheckpointEntry>* skip) {
      for (const auto& [index, entry] : entries) {
        if (skip != nullptr && skip->count(index) != 0) continue;
        if (entry.ok) {
          out << index << " ok " << hex16(std::bit_cast<std::uint64_t>(entry.value)) << "\n";
        } else {
          out << index << " fail " << entry.message << "\n";
        }
      }
    };
    dump(loaded_, &recorded_);  // recorded entries win over resumed ones
    dump(recorded_, nullptr);
    out.flush();
    if (!out.good()) throw std::runtime_error("checkpoint: write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename " + tmp + " -> " + path_ + " failed");
  }
}

void SweepCheckpoint::remove_file() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::remove(path_.c_str());
  std::remove((path_ + ".tmp").c_str());
}

void SweepCheckpoint::set_flush_interval(std::uint64_t interval) {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_interval_ = interval == 0 ? 1 : interval;
}

std::uint64_t SweepCheckpoint::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t count = static_cast<std::uint64_t>(loaded_.size() + recorded_.size());
  for (const auto& [index, entry] : recorded_) {
    if (loaded_.count(index) != 0) --count;
  }
  return count;
}

}  // namespace pdn3d::util
