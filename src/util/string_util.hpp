#pragma once

/// @file string_util.hpp
/// @brief Small string helpers (formatting numbers, splitting, trimming).

#include <string>
#include <string_view>
#include <vector>

namespace pdn3d::util {

/// Format @p value with @p decimals digits after the point ("12.34").
std::string fmt_fixed(double value, int decimals);

/// Format as a signed percentage with @p decimals digits ("-42.8%").
std::string fmt_percent(double fraction, int decimals = 1);

/// Split @p s on @p sep, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

}  // namespace pdn3d::util
