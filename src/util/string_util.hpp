#pragma once

/// @file string_util.hpp
/// @brief Small string helpers (formatting numbers, splitting, trimming).

#include <string>
#include <string_view>
#include <vector>

namespace pdn3d::util {

/// Format @p value with @p decimals digits after the point ("12.34").
std::string fmt_fixed(double value, int decimals);

/// Format as a signed percentage with @p decimals digits ("-42.8%").
std::string fmt_percent(double fraction, int decimals = 1);

/// Split @p s on @p sep, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Left-justify @p s in a field of @p width (always at least one trailing
/// space, so adjacent columns never fuse).
std::string pad(std::string_view s, std::size_t width);

}  // namespace pdn3d::util
