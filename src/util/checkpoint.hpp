#pragma once

/// \file
/// Crash-safe sweep checkpointing (docs/ROBUSTNESS.md).
///
/// A SweepCheckpoint records, per completed sweep index (Monte Carlo sample,
/// LUT entry, co-optimizer measurement), the bitwise-exact result so an
/// interrupted run can resume and finish byte-identical to an uninterrupted
/// one. Entries are valid independent of thread count or completion order
/// because every sweep derives its per-index state from split RNG streams.
///
/// File format (plain text, one record per line):
///
///   pdn3d-ckpt v1 key=<16-hex> total=<N>
///   <index> ok <16-hex IEEE-754 bits of the value>
///   <index> fail <single-line failure message>
///
/// `key` fingerprints the configuration that produced the file (benchmark,
/// operation, design, sweep parameters, seed); a resume against a different
/// configuration is refused. `total` is the sweep size, or 0 for open-ended
/// sweeps (co-optimizer). The file is only ever replaced whole via
/// write-temp-then-rename, so a crash leaves either the previous complete
/// snapshot or none at all — never a torn file.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace pdn3d::util {

/// FNV-1a 64-bit hash of a canonical configuration string, used as the
/// checkpoint `key` fingerprint.
std::uint64_t checkpoint_key(std::string_view canonical);

/// One completed sweep index.
struct CheckpointEntry {
  bool ok = false;      ///< true: `value` holds the result; false: `message` the failure
  double value = 0.0;   ///< bitwise-exact result (ok entries)
  std::string message;  ///< single-line failure reason (fail entries)
};

/// Thread-safe store of completed sweep indices with periodic atomic flushes.
class SweepCheckpoint {
 public:
  /// Open `path` for a sweep fingerprinted by `key` with `total` indices
  /// (0 = open-ended). With `resume` true an existing file is loaded (and a
  /// key/total mismatch or corrupt file throws std::runtime_error); a missing
  /// file starts fresh. With `resume` false any existing file is discarded.
  static SweepCheckpoint open(std::string path, std::uint64_t key, std::uint64_t total,
                              bool resume);

  SweepCheckpoint(SweepCheckpoint&&) noexcept;
  SweepCheckpoint& operator=(SweepCheckpoint&&) = delete;
  SweepCheckpoint(const SweepCheckpoint&) = delete;

  /// Entry loaded for `index` at open(), or nullptr if it must be computed.
  /// Only resumed entries are returned; indices recorded during this run are
  /// never handed back. Safe to call concurrently.
  const CheckpointEntry* find(std::uint64_t index) const;

  /// Record a freshly computed index. Flushes the file every
  /// `flush_interval()` records. Safe to call concurrently.
  void record(std::uint64_t index, CheckpointEntry entry);

  /// Write the current snapshot (header + every entry) to a temp file and
  /// rename it over `path`. Throws std::runtime_error on I/O failure.
  void flush();

  /// Delete the checkpoint file (e.g. after the caller decides the sweep
  /// output is no longer needed). Missing file is not an error.
  void remove_file();

  /// Records between automatic flushes (default 16; minimum 1).
  void set_flush_interval(std::uint64_t interval);
  std::uint64_t flush_interval() const { return flush_interval_; }

  std::uint64_t completed() const;  ///< loaded + recorded entry count
  std::uint64_t resumed() const { return static_cast<std::uint64_t>(loaded_.size()); }
  const std::string& path() const { return path_; }

 private:
  SweepCheckpoint(std::string path, std::uint64_t key, std::uint64_t total);
  void flush_locked();

  std::string path_;
  std::uint64_t key_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t flush_interval_ = 16;
  std::map<std::uint64_t, CheckpointEntry> loaded_;  // immutable after open()

  mutable std::mutex mutex_;
  std::map<std::uint64_t, CheckpointEntry> recorded_;
  std::uint64_t unflushed_ = 0;
};

}  // namespace pdn3d::util
