#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace pdn3d::util {

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string pad(std::string_view s, std::size_t width) {
  std::string out(s);
  out.append(out.size() < width ? width - out.size() : 1, ' ');
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace pdn3d::util
