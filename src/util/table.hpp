#pragma once

/// @file table.hpp
/// @brief ASCII table renderer used by the bench binaries to reproduce the
/// paper's tables with aligned columns.

#include <string>
#include <vector>

namespace pdn3d::util {

/// Accumulates rows of strings and renders them with column alignment.
///
/// Usage:
///   Table t({"Design", "IR drop (mV)"});
///   t.add_row({"off-chip", "30.03"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator line before the next row.
  void add_separator();

  /// Render with box-drawing characters disabled (plain ASCII, '|' and '-').
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace pdn3d::util
