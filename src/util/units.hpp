#pragma once

/// @file units.hpp
/// @brief Unit conventions and conversion helpers used throughout pdn3d.
///
/// All physical quantities are stored in SI base-derived units unless a
/// suffix says otherwise:
///   - lengths in millimetres (mm) -- die-scale geometry reads naturally,
///   - resistance in ohms, conductance in siemens,
///   - voltage in volts, current in amperes, power in watts,
///   - time in seconds (timing parameters in DRAM clock cycles where noted).
///
/// Helpers below convert to the display units the paper uses (mV, us).

namespace pdn3d::util {

/// Convert volts to millivolts (the unit every IR-drop table in the paper uses).
constexpr double to_mV(double volts) { return volts * 1e3; }

/// Convert millivolts to volts.
constexpr double from_mV(double mv) { return mv * 1e-3; }

/// Convert seconds to microseconds (memory-controller runtime unit).
constexpr double to_us(double seconds) { return seconds * 1e6; }

/// Convert watts to milliwatts (per-die power unit in Table 5).
constexpr double to_mW(double watts) { return watts * 1e3; }

/// Convert milliwatts to watts.
constexpr double from_mW(double mw) { return mw * 1e-3; }

/// Convert ohms to milliohms.
constexpr double to_mOhm(double ohms) { return ohms * 1e3; }

/// Convert milliohms to ohms.
constexpr double from_mOhm(double mohm) { return mohm * 1e-3; }

}  // namespace pdn3d::util
