#pragma once

/// @file cost_model.hpp
/// @brief The paper's Table 8 cost model.
///
/// Every technology option contributes a normalized cost term:
///   - M2 / M3 VDD usage: proportional, 10% -> 0.025 (i.e. 0.0025 per point)
///   - power TSV count: square-root law, 15 -> 0.078 and 480 -> 0.44
///   - TSV location: center adds 0, edge adds 0.5x the TSV cost (KOZ ring),
///     distributed adds 1.0x (KOZs between every bank)
///   - dedicated TSVs 0.06, bonding F2B 0.045 / F2F 0.06, RDL 0.05,
///     wire bonding 0.03
/// Off-chip stand-alone stacks always carry their own PG TSV network, so the
/// dedicated-TSV term applies to them unconditionally (visible in the paper's
/// Table 9 cost column).

#include "pdn/pdn_config.hpp"

namespace pdn3d::cost {

struct CostBreakdown {
  double m2 = 0.0;
  double m3 = 0.0;
  double tsv_count = 0.0;
  double tsv_location = 0.0;
  double dedicated = 0.0;
  double bonding = 0.0;
  double rdl = 0.0;
  double wire_bond = 0.0;

  [[nodiscard]] double total() const {
    return m2 + m3 + tsv_count + tsv_location + dedicated + bonding + rdl + wire_bond;
  }
};

/// Cost coefficient of the TSV square-root law (0.078 / sqrt(15)).
inline constexpr double kTsvCostCoefficient = 0.020137;

CostBreakdown compute_cost(const pdn::PdnConfig& config);

/// Convenience: total only.
double total_cost(const pdn::PdnConfig& config);

/// The paper's combined objective: IR-cost = IR^alpha * Cost^(1-alpha).
/// @param ir_mv in millivolts, @param alpha in [0, 1].
double ir_cost(double ir_mv, double cost, double alpha);

}  // namespace pdn3d::cost
