#include "cost/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace pdn3d::cost {

CostBreakdown compute_cost(const pdn::PdnConfig& config) {
  if (config.m2_usage <= 0.0 || config.m3_usage <= 0.0 || config.tsv_count < 1) {
    throw std::invalid_argument("compute_cost: invalid configuration");
  }
  CostBreakdown c;
  c.m2 = 0.25 * config.m2_usage;  // 0.0025 per usage point, usage as fraction
  c.m3 = 0.25 * config.m3_usage;

  const double tc = kTsvCostCoefficient * std::sqrt(static_cast<double>(config.tsv_count));
  c.tsv_count = tc;
  switch (config.tsv_location) {
    case pdn::TsvLocation::kCenter: c.tsv_location = 0.0; break;
    case pdn::TsvLocation::kEdge: c.tsv_location = 0.5 * tc; break;
    case pdn::TsvLocation::kDistributed: c.tsv_location = tc; break;
  }

  // Stand-alone (off-chip) stacks always pay for their own PG TSV network.
  const bool dedicated =
      config.dedicated_tsvs || config.mounting == pdn::Mounting::kOffChip;
  c.dedicated = dedicated ? 0.06 : 0.0;

  c.bonding = config.bonding == pdn::BondingStyle::kF2B ? 0.045 : 0.06;
  c.rdl = config.rdl != pdn::RdlMode::kNone ? 0.05 : 0.0;
  c.wire_bond = config.wire_bonding ? 0.03 : 0.0;
  return c;
}

double total_cost(const pdn::PdnConfig& config) { return compute_cost(config).total(); }

double ir_cost(double ir_mv, double cost, double alpha) {
  if (alpha < 0.0 || alpha > 1.0) throw std::invalid_argument("ir_cost: alpha outside [0,1]");
  if (ir_mv <= 0.0 || cost <= 0.0) throw std::invalid_argument("ir_cost: non-positive inputs");
  return std::pow(ir_mv, alpha) * std::pow(cost, 1.0 - alpha);
}

}  // namespace pdn3d::cost
