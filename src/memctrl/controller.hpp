#pragma once

/// @file controller.hpp
/// @brief Cycle-by-cycle 3D DRAM memory-controller simulator (Section 2.3).
///
/// Models per-bank state machines, a per-channel command slot and data bus,
/// a priority queue of fixed capacity, idle-bank auto-close, and the
/// activation policies of policy.hpp. Reports runtime, bandwidth, and the
/// worst memory-state IR drop encountered (via the LUT).

#include <vector>

#include "dram/bank.hpp"
#include "dram/timing.hpp"
#include "memctrl/policy.hpp"
#include "memctrl/request.hpp"

namespace pdn3d::memctrl {

struct SimConfig {
  dram::TimingParams timing;
  int dies = 4;
  int banks_per_die = 8;
  int channels = 1;
  bool channel_by_die = true;  ///< Wide I/O style: channel = die % channels
  int queue_capacity = 32;     ///< the paper's priority queue of size 32
  int max_active_per_die = 2;  ///< charge-pump interleave limit
  int bank_close_timeout = 8;  ///< close a bank idle for this many cycles
  long stall_limit = 50000;    ///< cycles without progress -> infeasible
  /// Workload I/O demand as a fraction of one channel's peak throughput;
  /// scales the activity at which the IR LUT evaluates memory states.
  double io_demand_factor = 0.8;
  /// Model periodic all-bank refresh (tREFI / tRFC). Off by default -- the
  /// paper's study ignores refresh.
  bool enable_refresh = false;
};

struct SimResult {
  bool feasible = true;  ///< false when the IR constraint admits no state
  dram::Cycle cycles = 0;
  double runtime_us = 0.0;
  double bandwidth_reads_per_clk = 0.0;
  double max_ir_mv = 0.0;  ///< worst LUT entry among states visited
  long reads = 0;
  long writes = 0;
  long activates = 0;
  long precharges = 0;
  long refreshes = 0;
  double avg_active_banks = 0.0;
  double row_hit_fraction = 0.0;
};

class MemoryController {
 public:
  MemoryController(const SimConfig& config, const PolicyConfig& policy);

  /// Simulate to completion of all @p requests.
  SimResult run(std::vector<Request> requests);

 private:
  [[nodiscard]] int channel_of(int die, int bank) const;

  SimConfig config_;
  PolicyConfig policy_config_;
};

}  // namespace pdn3d::memctrl
