#pragma once

/// @file workload.hpp
/// @brief Synthetic read-request generator.
///
/// The paper generates 10,000 read requests with temporal and spatial
/// locality under an 80% row-hit rate, one request every five DRAM cycles
/// (a heavy workload for stacked DDR3). We model locality with request
/// streams: with probability row_hit_rate the next request continues the
/// current (die, bank, row) stream; otherwise it jumps to a fresh random
/// location.

#include <vector>

#include "memctrl/request.hpp"
#include "util/rng.hpp"

namespace pdn3d::memctrl {

struct WorkloadConfig {
  long num_requests = 10000;
  int arrival_interval = 5;  ///< cycles between arrivals
  double row_hit_rate = 0.80;
  int dies = 4;
  int banks_per_die = 8;
  long rows_per_bank = 4096;
  /// Concurrent request streams (sources interleaved at the controller).
  /// Each arrival is drawn from a random stream; a stream keeps temporal and
  /// spatial locality of its own (die, bank, row).
  int streams = 4;
  /// Probability a stream jump stays on the same die (spatial locality).
  double die_affinity = 0.25;
  /// Fraction of requests that are writes. The paper studies reads only
  /// (write IR drop is nearly identical); the default preserves that.
  double write_fraction = 0.0;
  std::uint64_t seed = 0x5eed5eedULL;
};

std::vector<Request> generate_workload(const WorkloadConfig& config);

/// Fraction of requests that target the same (die, bank, row) as the
/// previous request to that bank -- the achievable row-hit upper bound.
double measured_locality(const std::vector<Request>& requests, int dies, int banks_per_die);

}  // namespace pdn3d::memctrl
