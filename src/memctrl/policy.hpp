#pragma once

/// @file policy.hpp
/// @brief Read policies (Section 5.2).
///
/// Two orthogonal choices:
///  - IR policy: the JEDEC *standard* policy throttles row activations with
///    tRRD/tFAW and -- being unaware of 3D stacking -- applies the two-bank
///    interleave limit to the whole stack as if it were one die. The
///    *IR-drop-aware* policy instead admits an activation iff the resulting
///    memory state's LUT entry stays under the IR constraint (per-die
///    charge-pump limit still applies).
///  - Scheduling: FCFS (arrival order) vs distributed-read (DistR), which
///    prioritizes requests whose target die currently has the fewest active
///    banks, balancing reads across dies.

#include <vector>

#include "dram/bank.hpp"
#include "irdrop/lut.hpp"
#include "memctrl/request.hpp"

namespace pdn3d::memctrl {

enum class IrPolicyKind {
  kStandard,  ///< tRRD + tFAW + stack-wide interleave limit; IR-blind
  kIrAware,   ///< LUT-checked activations under an IR constraint
};

enum class SchedulingKind { kFcfs, kDistR };

struct PolicyConfig {
  IrPolicyKind ir_policy = IrPolicyKind::kStandard;
  SchedulingKind scheduling = SchedulingKind::kFcfs;
  double ir_constraint_mv = 24.0;        ///< used by kIrAware
  /// Required for kIrAware and IR reporting. Read-only here: one LUT
  /// (precomputed in parallel by irdrop::IrLut::build, cached per design by
  /// core::Platform) can back any number of concurrent controller
  /// simulations without locking.
  const irdrop::IrLut* lut = nullptr;
  /// A 3D-aware controller scans the whole priority queue each cycle; the
  /// baseline JEDEC controller serves strictly in order (head-of-line).
  bool out_of_order = false;
  /// IR-aware admission also validates each die's isolated projection of the
  /// next state (other dies closing concentrates I/O traffic and raises the
  /// survivors' activity). Disabling this reproduces a naive LUT policy that
  /// can drift above its constraint -- see bench_ablation_policy.
  bool isolation_check = true;
};

/// The paper's baseline: JEDEC tRRD/tFAW limits, in-order FCFS service.
PolicyConfig standard_policy();

/// The paper's IR-drop-aware policy at @p constraint_mv with the chosen
/// scheduler (FCFS or DistR); scans the full queue.
PolicyConfig ir_aware_policy(double constraint_mv,
                             SchedulingKind scheduling = SchedulingKind::kFcfs);

/// Decides whether a new activation on @p die is admissible now.
class ActivationPolicy {
 public:
  ActivationPolicy(const PolicyConfig& config, const dram::TimingParams& timing, int dies,
                   int max_active_per_die);

  /// @param active_per_die current active-bank counts (Opening|Open).
  [[nodiscard]] bool allows(dram::Cycle now, int die,
                            const std::vector<int>& active_per_die) const;

  /// Record an issued activation (for the tRRD/tFAW windows).
  void note_activate(dram::Cycle now);

  [[nodiscard]] const PolicyConfig& config() const { return config_; }

 private:
  PolicyConfig config_;
  const dram::TimingParams* timing_;
  int max_active_per_die_;
  dram::Cycle last_activate_ = dram::kNever;
  std::vector<dram::Cycle> recent_activates_;  ///< ring of last 4 ACT times
};

/// Sort request-queue indices by scheduling priority.
/// @param queue the pending requests; @param active_per_die current counts.
/// Returns indices into @p queue, highest priority first.
std::vector<std::size_t> schedule_order(const std::vector<Request>& queue,
                                        SchedulingKind scheduling,
                                        const std::vector<int>& active_per_die);

}  // namespace pdn3d::memctrl
