#include "memctrl/trace.hpp"

#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace pdn3d::memctrl {

std::vector<Request> read_trace(std::istream& is) {
  std::vector<Request> out;
  std::string raw;
  int line = 0;
  dram::Cycle prev_arrival = 0;
  while (std::getline(is, raw)) {
    ++line;
    const std::string_view text = util::trim(raw);
    if (text.empty() || text.front() == '#') continue;

    std::istringstream ss{std::string(text)};
    long long arrival = 0;
    int die = 0;
    int bank = 0;
    long row = 0;
    std::string op;
    if (!(ss >> arrival >> die >> bank >> row >> op)) {
      throw std::runtime_error("trace line " + std::to_string(line) +
                               ": expected '<cycle> <die> <bank> <row> R|W'");
    }
    std::string extra;
    if (ss >> extra) {
      throw std::runtime_error("trace line " + std::to_string(line) + ": trailing junk '" +
                               extra + "'");
    }
    if (arrival < 0 || die < 0 || bank < 0 || row < 0) {
      throw std::runtime_error("trace line " + std::to_string(line) + ": negative field");
    }
    if (!out.empty() && arrival < prev_arrival) {
      throw std::runtime_error("trace line " + std::to_string(line) +
                               ": arrivals must be non-decreasing");
    }
    const std::string op_l = util::to_lower(op);
    if (op_l != "r" && op_l != "w") {
      throw std::runtime_error("trace line " + std::to_string(line) + ": op must be R or W");
    }

    Request r;
    r.id = static_cast<long>(out.size());
    r.arrival = arrival;
    r.die = die;
    r.bank = bank;
    r.row = row;
    r.is_write = op_l == "w";
    prev_arrival = arrival;
    out.push_back(r);
  }
  return out;
}

void write_trace(std::ostream& os, std::span<const Request> requests) {
  os << "# pdn3d trace: <arrival-cycle> <die> <bank> <row> R|W\n";
  for (const Request& r : requests) {
    os << r.arrival << ' ' << r.die << ' ' << r.bank << ' ' << r.row << ' '
       << (r.is_write ? 'W' : 'R') << "\n";
  }
}

std::string validate_trace(std::span<const Request> requests, int dies, int banks_per_die) {
  dram::Cycle prev = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    if (r.die < 0 || r.die >= dies) {
      return "request " + std::to_string(i) + ": die " + std::to_string(r.die) + " out of range";
    }
    if (r.bank < 0 || r.bank >= banks_per_die) {
      return "request " + std::to_string(i) + ": bank " + std::to_string(r.bank) +
             " out of range";
    }
    if (i > 0 && r.arrival < prev) {
      return "request " + std::to_string(i) + ": arrival decreases";
    }
    prev = r.arrival;
  }
  return {};
}

}  // namespace pdn3d::memctrl
