#pragma once

/// @file request.hpp
/// @brief A read request as seen by the memory controller.

#include "dram/bank.hpp"

namespace pdn3d::memctrl {

struct Request {
  long id = 0;
  dram::Cycle arrival = 0;  ///< cycle the request enters the controller
  int die = 0;
  int bank = 0;  ///< bank index within the die
  long row = 0;
  bool is_write = false;

  /// Filled by the simulator: cycle the last data beat left the bus.
  dram::Cycle completed = dram::kNever;
};

}  // namespace pdn3d::memctrl
