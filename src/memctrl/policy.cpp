#include "memctrl/policy.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pdn3d::memctrl {

PolicyConfig standard_policy() {
  PolicyConfig pc;
  pc.ir_policy = IrPolicyKind::kStandard;
  pc.scheduling = SchedulingKind::kFcfs;
  pc.out_of_order = false;
  return pc;
}

PolicyConfig ir_aware_policy(double constraint_mv, SchedulingKind scheduling) {
  PolicyConfig pc;
  pc.ir_policy = IrPolicyKind::kIrAware;
  pc.scheduling = scheduling;
  pc.ir_constraint_mv = constraint_mv;
  pc.out_of_order = true;
  return pc;
}

ActivationPolicy::ActivationPolicy(const PolicyConfig& config, const dram::TimingParams& timing,
                                   int dies, int max_active_per_die)
    : config_(config), timing_(&timing), max_active_per_die_(max_active_per_die) {
  (void)dies;
  if (config_.ir_policy == IrPolicyKind::kIrAware && config_.lut == nullptr) {
    throw std::invalid_argument("ActivationPolicy: IR-aware policy requires a LUT");
  }
}

bool ActivationPolicy::allows(dram::Cycle now, int die,
                              const std::vector<int>& active_per_die) const {
  // Charge-pump limit: at most N interleaved banks per die, always enforced.
  if (active_per_die[static_cast<std::size_t>(die)] >= max_active_per_die_) return false;

  if (config_.ir_policy == IrPolicyKind::kStandard) {
    // tRRD: minimum spacing between any two activates.
    if (last_activate_ != dram::kNever && now < last_activate_ + timing_->tRRD) return false;
    // tFAW: at most four activates in any tFAW window.
    int in_window = 0;
    for (const dram::Cycle c : recent_activates_) {
      if (c != dram::kNever && now < c + timing_->tFAW) ++in_window;
    }
    if (in_window >= 4) return false;
    // 3D-unaware interleave limit: the standard policy sees one "device",
    // so the per-die interleave cap applies to the whole stack.
    const int total = std::accumulate(active_per_die.begin(), active_per_die.end(), 0);
    if (total >= max_active_per_die_) return false;
    return true;
  }

  // IR-drop-aware: admit iff the LUT says the *resulting* state meets the
  // constraint -- including every state reachable from it by other dies
  // closing their banks. Closing a die concentrates the shared I/O traffic
  // on the remaining ones (higher per-die activity), so the isolated
  // projection of each active die must also stay legal.
  std::vector<int> next = active_per_die;
  ++next[static_cast<std::size_t>(die)];
  if (config_.lut->max_ir_mv(next) > config_.ir_constraint_mv) return false;
  if (!config_.isolation_check) return true;
  std::vector<int> isolated(next.size(), 0);
  for (std::size_t e = 0; e < next.size(); ++e) {
    if (next[e] == 0) continue;
    std::fill(isolated.begin(), isolated.end(), 0);
    isolated[e] = next[e];
    if (config_.lut->max_ir_mv(isolated) > config_.ir_constraint_mv) return false;
  }
  return true;
}

void ActivationPolicy::note_activate(dram::Cycle now) {
  last_activate_ = now;
  recent_activates_.push_back(now);
  if (recent_activates_.size() > 4) recent_activates_.erase(recent_activates_.begin());
}

std::vector<std::size_t> schedule_order(const std::vector<Request>& queue,
                                        SchedulingKind scheduling,
                                        const std::vector<int>& active_per_die) {
  std::vector<std::size_t> order(queue.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (scheduling == SchedulingKind::kFcfs) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return queue[a].arrival < queue[b].arrival;
    });
  } else {
    // DistR: fewest active banks on the target die first, then arrival.
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const int da = active_per_die[static_cast<std::size_t>(queue[a].die)];
      const int db = active_per_die[static_cast<std::size_t>(queue[b].die)];
      if (da != db) return da < db;
      return queue[a].arrival < queue[b].arrival;
    });
  }
  return order;
}

}  // namespace pdn3d::memctrl
