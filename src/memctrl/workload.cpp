#include "memctrl/workload.hpp"

#include <map>
#include <stdexcept>

namespace pdn3d::memctrl {

std::vector<Request> generate_workload(const WorkloadConfig& config) {
  if (config.num_requests <= 0 || config.dies <= 0 || config.banks_per_die <= 0) {
    throw std::invalid_argument("generate_workload: bad configuration");
  }
  util::Rng rng(config.seed);
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(config.num_requests));

  struct Stream {
    int die;
    int bank;
    long row;
  };
  const int nstreams = std::max(1, config.streams);
  std::vector<Stream> streams;
  streams.reserve(static_cast<std::size_t>(nstreams));
  for (int s = 0; s < nstreams; ++s) {
    streams.push_back({rng.next_int(0, config.dies - 1),
                       rng.next_int(0, config.banks_per_die - 1),
                       rng.next_int(0, static_cast<int>(config.rows_per_bank - 1))});
  }

  for (long i = 0; i < config.num_requests; ++i) {
    Stream& s = streams[static_cast<std::size_t>(rng.next_int(0, nstreams - 1))];
    if (i > 0 && !rng.next_bool(config.row_hit_rate)) {
      // Stream jump: new bank/row, sometimes staying on the same die.
      if (!rng.next_bool(config.die_affinity)) s.die = rng.next_int(0, config.dies - 1);
      s.bank = rng.next_int(0, config.banks_per_die - 1);
      s.row = rng.next_int(0, static_cast<int>(config.rows_per_bank - 1));
    }
    Request r;
    r.id = i;
    r.arrival = static_cast<dram::Cycle>(i) * config.arrival_interval;
    r.die = s.die;
    r.bank = s.bank;
    r.row = s.row;
    r.is_write = rng.next_bool(config.write_fraction);
    out.push_back(r);
  }
  return out;
}

double measured_locality(const std::vector<Request>& requests, int dies, int banks_per_die) {
  if (requests.empty()) return 0.0;
  std::map<int, long> last_row;  // (die * banks + bank) -> last row
  long hits = 0;
  long total = 0;
  for (const Request& r : requests) {
    const int key = r.die * banks_per_die + r.bank;
    const auto it = last_row.find(key);
    if (it != last_row.end()) {
      ++total;
      if (it->second == r.row) ++hits;
    }
    last_row[key] = r.row;
  }
  (void)dies;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
}

}  // namespace pdn3d::memctrl
