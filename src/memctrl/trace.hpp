#pragma once

/// @file trace.hpp
/// @brief Request-trace reader/writer.
///
/// Besides the synthetic generator, the controller can replay request traces
/// (e.g. captured from a full-system simulator). Line format:
///
///   # comment
///   <arrival-cycle> <die> <bank> <row> R|W
///
/// Arrival cycles must be non-decreasing.

#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "memctrl/request.hpp"

namespace pdn3d::memctrl {

/// Parse a trace. Throws std::runtime_error with a line number on malformed
/// input (bad field count, negative indices, decreasing arrivals).
std::vector<Request> read_trace(std::istream& is);

/// Serialize requests in the same format (round-trips through read_trace).
void write_trace(std::ostream& os, std::span<const Request> requests);

/// Validate a request stream against a configuration (targets in range,
/// arrivals sorted). Returns an empty string if fine, else a description.
std::string validate_trace(std::span<const Request> requests, int dies, int banks_per_die);

}  // namespace pdn3d::memctrl
