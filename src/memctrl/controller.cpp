#include "memctrl/controller.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdn3d::memctrl {

namespace {

const char* to_label(IrPolicyKind kind) {
  return kind == IrPolicyKind::kIrAware ? "ir-aware" : "standard";
}

const char* to_label(SchedulingKind kind) {
  return kind == SchedulingKind::kDistR ? "distr" : "fcfs";
}

}  // namespace

MemoryController::MemoryController(const SimConfig& config, const PolicyConfig& policy)
    : config_(config), policy_config_(policy) {
  if (config_.dies <= 0 || config_.banks_per_die <= 0 || config_.channels <= 0) {
    throw std::invalid_argument("MemoryController: bad configuration");
  }
  if (policy.ir_policy == IrPolicyKind::kIrAware && policy.lut == nullptr) {
    throw std::invalid_argument("MemoryController: IR-aware policy requires a LUT");
  }
}

int MemoryController::channel_of(int die, int bank) const {
  if (config_.channel_by_die) return die % config_.channels;
  return (die * config_.banks_per_die + bank) % config_.channels;
}

SimResult MemoryController::run(std::vector<Request> requests) {
  PDN3D_TRACE_SPAN_NAMED(span, "memctrl/run");
  static auto& m_requests = obs::counter("memctrl.requests_completed");
  static auto& m_queue_depth =
      obs::histogram("memctrl.queue_depth", obs::linear_buckets(0.0, 4.0, 16));
  // Per-policy stall counters (cycles spent with no forward progress); the
  // label pair identifies the IR policy x scheduler combination under test.
  obs::Counter& m_stalls =
      obs::counter(std::string("memctrl.stall_cycles.") + to_label(policy_config_.ir_policy) +
                   "." + to_label(policy_config_.scheduling));
  span.attribute("ir_policy", to_label(policy_config_.ir_policy));
  span.attribute("scheduling", to_label(policy_config_.scheduling));
  std::uint64_t stall_cycles = 0;

  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.arrival < b.arrival; });

  const dram::TimingParams& t = config_.timing;
  const int nbanks = config_.dies * config_.banks_per_die;
  std::vector<dram::Bank> banks(static_cast<std::size_t>(nbanks), dram::Bank(t));
  std::vector<dram::Cycle> bus_free(static_cast<std::size_t>(config_.channels), 0);

  ActivationPolicy policy(policy_config_, t, config_.dies, config_.max_active_per_die);

  std::vector<Request> queue;
  queue.reserve(static_cast<std::size_t>(config_.queue_capacity));

  SimResult result;
  std::size_t next_arrival = 0;
  long completed = 0;
  const long total = static_cast<long>(requests.size());
  dram::Cycle now = 0;
  dram::Cycle last_progress = 0;
  dram::Cycle last_completion = 0;
  double active_bank_cycles = 0.0;

  std::vector<int> active_per_die(static_cast<std::size_t>(config_.dies), 0);
  std::vector<char> bank_touched(static_cast<std::size_t>(nbanks), 0);
  std::vector<char> cmd_used(static_cast<std::size_t>(config_.channels), 0);

  // Refresh bookkeeping (per die), staggered so dies do not refresh together.
  std::vector<dram::Cycle> refresh_due(static_cast<std::size_t>(config_.dies), dram::kNever);
  std::vector<dram::Cycle> refresh_until(static_cast<std::size_t>(config_.dies), dram::kNever);
  std::vector<char> refresh_pending(static_cast<std::size_t>(config_.dies), 0);
  if (config_.enable_refresh) {
    for (int d = 0; d < config_.dies; ++d) {
      refresh_due[static_cast<std::size_t>(d)] =
          t.tREFI / config_.dies * (d + 1);  // staggered first due times
    }
  }
  const auto die_blocked = [&](int die, dram::Cycle cyc) {
    const auto d = static_cast<std::size_t>(die);
    return refresh_pending[d] != 0 ||
           (refresh_until[d] != dram::kNever && cyc < refresh_until[d]);
  };

  const auto bank_at = [&](int die, int bank) -> dram::Bank& {
    return banks[static_cast<std::size_t>(die * config_.banks_per_die + bank)];
  };

  while (completed < total) {
    // --- Arrivals (the queue is the paper's priority queue of size 32). ----
    while (next_arrival < requests.size() && requests[next_arrival].arrival <= now &&
           static_cast<int>(queue.size()) < config_.queue_capacity) {
      queue.push_back(requests[next_arrival]);
      ++next_arrival;
      last_progress = now;
    }
    m_queue_depth.observe(static_cast<double>(queue.size()));

    // --- Current memory state. ---------------------------------------------
    std::fill(active_per_die.begin(), active_per_die.end(), 0);
    for (int d = 0; d < config_.dies; ++d) {
      for (int b = 0; b < config_.banks_per_die; ++b) {
        if (bank_at(d, b).is_active(now)) ++active_per_die[static_cast<std::size_t>(d)];
      }
    }
    {
      int total_active = 0;
      for (int c : active_per_die) total_active += c;
      active_bank_cycles += total_active;
      if (policy_config_.lut != nullptr && total_active > 0) {
        std::vector<int> clamped = active_per_die;
        for (int& c : clamped) c = std::min(c, policy_config_.lut->max_per_die());
        result.max_ir_mv = std::max(result.max_ir_mv, policy_config_.lut->max_ir_mv(clamped));
      }
    }

    // --- Refresh scheduling (optional). --------------------------------------
    if (config_.enable_refresh) {
      for (int d = 0; d < config_.dies; ++d) {
        const auto dd = static_cast<std::size_t>(d);
        if (!refresh_pending[dd] && refresh_due[dd] != dram::kNever && now >= refresh_due[dd]) {
          refresh_pending[dd] = 1;  // stop issuing to this die; drain its banks
        }
        if (refresh_pending[dd]) {
          bool all_closed = true;
          for (int b = 0; b < config_.banks_per_die; ++b) {
            dram::Bank& bank = bank_at(d, b);
            const auto ph = bank.phase(now);
            if (ph == dram::Bank::Phase::kOpen && bank.can_precharge(now)) {
              bank.precharge(now);
              ++result.precharges;
            }
            if (bank.phase(now) != dram::Bank::Phase::kClosed) all_closed = false;
          }
          if (all_closed) {
            refresh_pending[dd] = 0;
            refresh_until[dd] = now + t.tRFC;
            refresh_due[dd] += t.tREFI;
            ++result.refreshes;
            last_progress = now;
          }
        }
      }
    }

    // --- Idle-bank auto close (power action, Section 2.3). ------------------
    for (int d = 0; d < config_.dies; ++d) {
      for (int b = 0; b < config_.banks_per_die; ++b) {
        dram::Bank& bank = bank_at(d, b);
        if (bank.phase(now) == dram::Bank::Phase::kOpen &&
            now - bank.last_activity() > config_.bank_close_timeout && bank.can_precharge(now)) {
          bank.precharge(now);
          ++result.precharges;
        }
      }
    }

    // --- Issue commands. -----------------------------------------------------
    std::fill(bank_touched.begin(), bank_touched.end(), 0);
    std::fill(cmd_used.begin(), cmd_used.end(), 0);
    const auto order = schedule_order(queue, policy_config_.scheduling, active_per_die);
    bool act_gate_open = true;
    std::vector<std::size_t> to_remove;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const std::size_t qi = order[oi];
      // An in-order controller only opens/closes rows for the oldest request
      // (row hits anywhere in the queue are served -- FR-FCFS style); a
      // 3D-aware controller may activate for any queued request.
      const bool may_manage_rows = policy_config_.out_of_order || oi == 0;
      Request& r = queue[qi];
      if (config_.enable_refresh && die_blocked(r.die, now)) continue;
      const int ch = channel_of(r.die, r.bank);
      if (cmd_used[static_cast<std::size_t>(ch)]) continue;
      const int bank_key = r.die * config_.banks_per_die + r.bank;
      if (bank_touched[static_cast<std::size_t>(bank_key)]) continue;
      dram::Bank& bank = bank_at(r.die, r.bank);

      const bool column_ready =
          r.is_write ? bank.can_write(now, r.row) : bank.can_read(now, r.row);
      if (column_ready) {
        const int data_delay = r.is_write ? t.tCWL : t.tCL;
        if (bus_free[static_cast<std::size_t>(ch)] <= now + data_delay) {
          if (r.is_write) {
            bank.write(now);
            ++result.writes;
          } else {
            bank.read(now);
            ++result.reads;
          }
          bus_free[static_cast<std::size_t>(ch)] = now + data_delay + t.burst_cycles();
          r.completed = now + data_delay + t.burst_cycles();
          last_completion = std::max(last_completion, r.completed);
          ++completed;
          to_remove.push_back(qi);
          cmd_used[static_cast<std::size_t>(ch)] = 1;
          bank_touched[static_cast<std::size_t>(bank_key)] = 1;
          last_progress = now;
        }
        continue;
      }

      const auto phase = bank.phase(now);
      if (phase == dram::Bank::Phase::kOpen && bank.open_row() != r.row) {
        if (!may_manage_rows) continue;
        bank_touched[static_cast<std::size_t>(bank_key)] = 1;
        if (bank.can_precharge(now)) {
          bank.precharge(now);
          ++result.precharges;
          cmd_used[static_cast<std::size_t>(ch)] = 1;
          last_progress = now;
        }
        continue;
      }

      if (phase == dram::Bank::Phase::kClosed && bank.can_activate(now)) {
        if (!may_manage_rows) continue;
        bank_touched[static_cast<std::size_t>(bank_key)] = 1;
        if (!act_gate_open) continue;
        if (!policy.allows(now, r.die, active_per_die)) {
          // FCFS preserves activation order: an IR-blocked older request
          // gates younger activations (anti-starvation, Section 5.2). DistR
          // reorders instead, so younger requests may proceed.
          if (policy_config_.scheduling == SchedulingKind::kFcfs) act_gate_open = false;
          continue;
        }
        {
          bank.activate(now, r.row);
          policy.note_activate(now);
          ++active_per_die[static_cast<std::size_t>(r.die)];
          ++result.activates;
          cmd_used[static_cast<std::size_t>(ch)] = 1;
          last_progress = now;
        }
        continue;
      }
      // Opening or precharging: nothing to do this cycle.
      bank_touched[static_cast<std::size_t>(bank_key)] = 1;
    }

    // Remove completed requests (descending to keep indices valid).
    std::sort(to_remove.rbegin(), to_remove.rend());
    for (const std::size_t qi : to_remove) {
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
    }

    // --- Stall detection (IR constraint may admit no state at all). --------
    if (last_progress != now) ++stall_cycles;
    if (now - last_progress > config_.stall_limit) {
      result.feasible = false;
      break;
    }
    ++now;
  }
  m_stalls.add(stall_cycles);
  m_requests.add(static_cast<std::uint64_t>(completed));
  span.attribute("requests", static_cast<std::uint64_t>(completed));
  span.attribute("feasible", result.feasible ? "true" : "false");

  result.cycles = result.feasible ? last_completion : now;
  result.runtime_us = t.cycles_to_us(result.cycles);
  const long column_ops = result.reads + result.writes;
  result.bandwidth_reads_per_clk =
      result.cycles > 0 ? static_cast<double>(column_ops) / static_cast<double>(result.cycles)
                        : 0.0;
  result.avg_active_banks =
      now > 0 ? active_bank_cycles / static_cast<double>(now) : 0.0;
  result.row_hit_fraction =
      column_ops > 0
          ? 1.0 - static_cast<double>(result.activates) / static_cast<double>(column_ops)
          : 0.0;
  return result;
}

}  // namespace pdn3d::memctrl
