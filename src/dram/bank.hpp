#pragma once

/// @file bank.hpp
/// @brief Cycle-level DRAM bank state machine.
///
/// Tracks one bank's row-buffer state and the timestamps needed to enforce
/// tRCD/tRAS/tRP/tCCD/tRTP. The controller drives it with activate/read/
/// precharge commands; the bank validates legality.

#include <cstdint>

#include "dram/timing.hpp"

namespace pdn3d::dram {

using Cycle = long long;
inline constexpr Cycle kNever = -1'000'000'000LL;

class Bank {
 public:
  enum class Phase {
    kClosed,      ///< precharged, ready for activate
    kOpening,     ///< activate issued, row not yet usable
    kOpen,        ///< row buffer valid
    kPrecharging  ///< precharge issued, not yet complete
  };

  explicit Bank(const TimingParams& timing) : timing_(&timing) {}

  [[nodiscard]] Phase phase(Cycle now) const;
  [[nodiscard]] long open_row() const { return open_row_; }

  /// An "active" bank in the paper's IR sense: a row is (being) opened.
  [[nodiscard]] bool is_active(Cycle now) const {
    const Phase p = phase(now);
    return p == Phase::kOpening || p == Phase::kOpen;
  }

  [[nodiscard]] bool can_activate(Cycle now) const;
  [[nodiscard]] bool can_read(Cycle now, long row) const;
  [[nodiscard]] bool can_write(Cycle now, long row) const;
  [[nodiscard]] bool can_precharge(Cycle now) const;

  /// Issue commands. Each throws std::logic_error when illegal at @p now
  /// (the controller is expected to have checked with the predicates).
  void activate(Cycle now, long row);
  void read(Cycle now);
  void write(Cycle now);
  void precharge(Cycle now);

  /// Cycle of the last read command (kNever before any read).
  [[nodiscard]] Cycle last_read() const { return last_read_; }
  /// Cycle of the last write command (kNever before any write).
  [[nodiscard]] Cycle last_write() const { return last_write_; }
  /// Cycle of the last activate (kNever before any).
  [[nodiscard]] Cycle last_activate() const { return last_activate_; }
  /// Latest of last read / row-ready, for idle-timeout close decisions.
  [[nodiscard]] Cycle last_activity() const;

 private:
  const TimingParams* timing_;
  long open_row_ = -1;
  Cycle last_activate_ = kNever;
  Cycle row_ready_ = kNever;       ///< activate + tRCD
  Cycle ras_satisfied_ = kNever;   ///< activate + tRAS
  Cycle last_read_ = kNever;
  Cycle last_write_ = kNever;
  Cycle precharge_issued_ = kNever;
  Cycle precharge_done_ = 0;       ///< bank usable again at this cycle
  bool open_ = false;
  bool precharging_ = false;
};

}  // namespace pdn3d::dram
