#include "dram/bank.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdn3d::dram {

Bank::Phase Bank::phase(Cycle now) const {
  if (precharging_) {
    return now >= precharge_done_ ? Phase::kClosed : Phase::kPrecharging;
  }
  if (!open_) return Phase::kClosed;
  return now >= row_ready_ ? Phase::kOpen : Phase::kOpening;
}

bool Bank::can_activate(Cycle now) const {
  return phase(now) == Phase::kClosed && now >= precharge_done_;
}

bool Bank::can_read(Cycle now, long row) const {
  if (phase(now) != Phase::kOpen || open_row_ != row) return false;
  if (last_read_ != kNever && now < last_read_ + timing_->tCCD) return false;
  // Write-to-read turnaround: the write data must land plus tWTR.
  if (last_write_ != kNever &&
      now < last_write_ + timing_->tCWL + timing_->burst_cycles() + timing_->tWTR) {
    return false;
  }
  return true;
}

bool Bank::can_write(Cycle now, long row) const {
  if (phase(now) != Phase::kOpen || open_row_ != row) return false;
  if (last_write_ != kNever && now < last_write_ + timing_->tCCD) return false;
  // Read-to-write bus turnaround.
  if (last_read_ != kNever && now < last_read_ + timing_->tRTW) return false;
  return true;
}

bool Bank::can_precharge(Cycle now) const {
  const Phase p = phase(now);
  if (p != Phase::kOpen && p != Phase::kOpening) return false;
  if (now < ras_satisfied_) return false;
  if (last_read_ != kNever && now < last_read_ + timing_->tRTP) return false;
  // Write recovery: data must be restored to the array before closing.
  if (last_write_ != kNever &&
      now < last_write_ + timing_->tCWL + timing_->burst_cycles() + timing_->tWR) {
    return false;
  }
  return true;
}

void Bank::activate(Cycle now, long row) {
  if (!can_activate(now)) throw std::logic_error("Bank::activate: illegal");
  if (precharging_) precharging_ = false;  // precharge completed by now
  open_ = true;
  open_row_ = row;
  last_activate_ = now;
  row_ready_ = now + timing_->tRCD;
  ras_satisfied_ = now + timing_->tRAS;
  last_read_ = kNever;
  last_write_ = kNever;
}

void Bank::read(Cycle now) {
  if (phase(now) != Phase::kOpen) throw std::logic_error("Bank::read: row not open");
  if (last_read_ != kNever && now < last_read_ + timing_->tCCD) {
    throw std::logic_error("Bank::read: tCCD violation");
  }
  last_read_ = now;
}

void Bank::write(Cycle now) {
  if (!can_write(now, open_row_) || phase(now) != Phase::kOpen) {
    throw std::logic_error("Bank::write: illegal");
  }
  last_write_ = now;
}

void Bank::precharge(Cycle now) {
  if (!can_precharge(now)) throw std::logic_error("Bank::precharge: illegal");
  open_ = false;
  open_row_ = -1;
  precharging_ = true;
  precharge_issued_ = now;
  precharge_done_ = now + timing_->tRP;
}

Cycle Bank::last_activity() const {
  return std::max({last_read_, last_write_, row_ready_});
}

}  // namespace pdn3d::dram
