#pragma once

/// @file timing.hpp
/// @brief JEDEC-style DRAM read timing parameters (in clock cycles).
///
/// These are the parameters the paper's memory-controller simulator models
/// (Section 2.3): tCL, tRCD, tRP, tRAS, tCCD, plus the standard policy's
/// tRRD and tFAW limits (Section 5.2 uses tRRD = 8, tFAW = 32).

namespace pdn3d::dram {

struct TimingParams {
  double tck_ns = 1.25;  ///< DDR3-1600 clock period

  int tCL = 11;   ///< read command to first data
  int tRCD = 11;  ///< activate to read
  int tRP = 11;   ///< precharge to activate
  int tRAS = 28;  ///< activate to precharge (minimum row-open time)
  int tCCD = 4;   ///< column command to column command
  int tRTP = 6;   ///< read to precharge
  int tRRD = 8;   ///< activate to activate (standard policy)
  int tFAW = 32;  ///< four-activate window (standard policy)

  int tCWL = 8;   ///< write command to first data
  int tWR = 12;   ///< end of write data to precharge (write recovery)
  int tWTR = 6;   ///< end of write data to a read command (same bank group)
  int tRTW = 7;   ///< read command to write command (bus turnaround)

  int tREFI = 6240;  ///< average refresh interval (7.8 us at DDR3-1600)
  int tRFC = 128;    ///< refresh cycle time (160 ns at DDR3-1600)

  int burst_length = 8;  ///< beats per read; DDR transfers 2 beats per cycle

  /// Data-bus occupancy of one read burst, in cycles.
  [[nodiscard]] int burst_cycles() const { return burst_length / 2; }

  /// Convert a cycle count to microseconds.
  [[nodiscard]] double cycles_to_us(long cycles) const {
    return static_cast<double>(cycles) * tck_ns * 1e-3;
  }
};

/// DDR3-1600 defaults (stacked DDR3 benchmark).
inline TimingParams ddr3_1600_timing() { return TimingParams{}; }

/// Wide I/O SDR-200: long clock period, same cycle-domain parameters scaled
/// down (the interface is slow but wide).
inline TimingParams wide_io_timing() {
  TimingParams t;
  t.tck_ns = 5.0;
  t.tCL = 3;
  t.tRCD = 4;
  t.tRP = 4;
  t.tRAS = 9;
  t.tCCD = 2;
  t.tRTP = 2;
  t.tRRD = 2;
  t.tFAW = 10;
  t.burst_length = 4;
  return t;
}

/// HMC-class timing: 2500 Mbps/pin interface, aggressive bank cycle.
inline TimingParams hmc_timing() {
  TimingParams t;
  t.tck_ns = 0.8;
  t.tCL = 14;
  t.tRCD = 14;
  t.tRP = 14;
  t.tRAS = 34;
  t.tCCD = 4;
  t.tRTP = 8;
  t.tRRD = 10;
  t.tFAW = 40;
  t.burst_length = 8;
  return t;
}

}  // namespace pdn3d::dram
