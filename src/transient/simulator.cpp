#include "transient/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/coo.hpp"
#include "util/units.hpp"

namespace pdn3d::transient {

TransientSimulator::TransientSimulator(const pdn::StackModel& model, std::span<const double> caps,
                                       double dt_s)
    : model_(model), dt_(dt_s) {
  const std::size_t n = model.node_count();
  if (caps.size() != n) throw std::invalid_argument("TransientSimulator: cap vector size");
  if (dt_s <= 0.0) throw std::invalid_argument("TransientSimulator: dt must be positive");
  if (model.taps().empty()) throw std::invalid_argument("TransientSimulator: no supply taps");

  cap_over_dt_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) cap_over_dt_[i] = caps[i] / dt_;

  linalg::CooBuilder g_builder(n);
  for (const auto& r : model.resistors()) g_builder.stamp_conductance(r.a, r.b, 1.0 / r.ohms);
  supply_rhs_.assign(n, 0.0);
  for (const auto& t : model.taps()) {
    const double g = 1.0 / t.ohms;
    g_builder.stamp_to_ground(t.node, g);
    supply_rhs_[t.node] += g * model.vdd();
  }
  g_only_ = g_builder.compress();

  for (std::size_t i = 0; i < n; ++i) {
    if (cap_over_dt_[i] > 0.0) g_builder.stamp_to_ground(i, cap_over_dt_[i]);
  }
  system_ = g_builder.compress();

  ic_system_ = std::make_unique<linalg::IncompleteCholesky>(system_);
  ic_g_ = std::make_unique<linalg::IncompleteCholesky>(g_only_);
}

std::vector<double> TransientSimulator::solve(const std::vector<double>& rhs,
                                              std::vector<double> x) const {
  // IC-PCG with a warm start (the previous time step's solution).
  const std::size_t n = system_.dimension();
  std::vector<double> r(n, 0.0);
  system_.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - r[i];
  std::vector<double> z(n, 0.0);
  std::vector<double> p(n, 0.0);
  std::vector<double> ap(n, 0.0);

  const double bnorm = linalg::norm2(rhs);
  if (bnorm == 0.0) return std::vector<double>(n, 0.0);
  const double target = 1e-9 * bnorm;
  if (linalg::norm2(r) <= target) return x;

  ic_system_->apply(r, z);
  p = z;
  double rz = linalg::dot(r, z);
  for (std::size_t it = 0; it < 5000; ++it) {
    system_.multiply(p, ap);
    const double pap = linalg::dot(p, ap);
    if (pap <= 0.0) break;
    const double alpha = rz / pap;
    linalg::axpy(alpha, p, x);
    linalg::axpy(-alpha, ap, r);
    if (linalg::norm2(r) <= target) return x;
    ic_system_->apply(r, z);
    const double rz_new = linalg::dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  throw std::runtime_error("TransientSimulator: PCG did not converge");
}

double TransientSimulator::worst_dram_ir(std::span<const double> v) const {
  double worst = 0.0;
  for (int d = 0; d < model_.dram_die_count(); ++d) {
    const auto& g = model_.device_grid(d);
    for (std::size_t k = 0; k < g.size(); ++k) {
      worst = std::max(worst, model_.vdd() - v[g.base + k]);
    }
  }
  return util::to_mV(worst);
}

TransientResult TransientSimulator::step_response(std::span<const double> sinks,
                                                  double duration_s) const {
  const std::size_t n = system_.dimension();
  if (sinks.size() != n) throw std::invalid_argument("step_response: sink vector size");
  if (duration_s <= 0.0) throw std::invalid_argument("step_response: duration must be positive");

  TransientResult out;

  // DC reference (t -> inf) via the G-only system.
  {
    std::vector<double> rhs(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = supply_rhs_[i] - sinks[i];
    // Plain IC-PCG on G.
    std::vector<double> x(n, model_.vdd());
    std::vector<double> r(n, 0.0);
    g_only_.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - r[i];
    std::vector<double> z(n, 0.0);
    std::vector<double> p(n, 0.0);
    std::vector<double> ap(n, 0.0);
    const double target = 1e-9 * linalg::norm2(rhs);
    if (linalg::norm2(r) > target) {
      ic_g_->apply(r, z);
      p = z;
      double rz = linalg::dot(r, z);
      for (std::size_t it = 0; it < 20000; ++it) {
        g_only_.multiply(p, ap);
        const double pap = linalg::dot(p, ap);
        if (pap <= 0.0) break;
        const double alpha = rz / pap;
        linalg::axpy(alpha, p, x);
        linalg::axpy(-alpha, ap, r);
        if (linalg::norm2(r) <= target) break;
        ic_g_->apply(r, z);
        const double rz_new = linalg::dot(r, z);
        const double beta = rz_new / rz;
        rz = rz_new;
        for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
      }
    }
    out.dc_ir_mv = worst_dram_ir(x);
  }

  // Time march from the fully charged state.
  std::vector<double> v(n, model_.vdd());
  std::vector<double> rhs(n, 0.0);
  const auto steps = static_cast<std::size_t>(std::ceil(duration_s / dt_));
  out.time_ns.reserve(steps + 1);
  out.worst_ir_mv.reserve(steps + 1);
  out.time_ns.push_back(0.0);
  out.worst_ir_mv.push_back(0.0);

  bool settled = false;
  for (std::size_t k = 1; k <= steps; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = supply_rhs_[i] - sinks[i] + cap_over_dt_[i] * v[i];
    }
    v = solve(rhs, std::move(v));
    const double t_ns = static_cast<double>(k) * dt_ * 1e9;
    const double ir = worst_dram_ir(v);
    out.time_ns.push_back(t_ns);
    out.worst_ir_mv.push_back(ir);
    out.peak_ir_mv = std::max(out.peak_ir_mv, ir);
    if (!settled && out.dc_ir_mv > 0.0 && std::abs(ir - out.dc_ir_mv) <= 0.02 * out.dc_ir_mv) {
      out.settle_ns = t_ns;
      settled = true;
    }
  }
  if (!settled) out.settle_ns = out.time_ns.back();
  if (out.dc_ir_mv > 0.0) {
    out.overshoot_fraction = std::max(0.0, (out.peak_ir_mv - out.dc_ir_mv) / out.dc_ir_mv);
  }
  return out;
}

}  // namespace pdn3d::transient
