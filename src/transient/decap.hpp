#pragma once

/// @file decap.hpp
/// @brief Decoupling-capacitance assignment for transient droop studies.
///
/// The paper is a DC study but motivates two AC effects: on-die decap from
/// sub-bank partitioning ([5] in the paper) and the off-chip decaps reachable
/// through backside bond wires ("provide better AC power integrity"). This
/// module assigns a per-node capacitance so the transient simulator can
/// quantify both.

#include <vector>

#include "pdn/stack_model.hpp"

namespace pdn3d::transient {

struct DecapConfig {
  /// Intrinsic on-die decap (device + well + explicit cells) per die area.
  double die_nf_per_mm2 = 0.10;
  /// Package-plane capacitance per area (plane pairs + discretes).
  double package_nf_per_mm2 = 0.50;
  /// Extra lumped decap (nF) added at every supply-tap node, standing for
  /// the off-chip capacitors that bond wires / balls connect to.
  double tap_decap_nf = 2.0;
};

/// Per-node capacitance in farads (model.node_count() entries). Every die
/// layer-grid node receives its area share; tap nodes get the lumped extra.
std::vector<double> assign_node_capacitance(const pdn::StackModel& model,
                                            const DecapConfig& config = {});

/// Total capacitance (F) of an assignment -- bookkeeping helper.
double total_capacitance(const std::vector<double>& node_caps);

}  // namespace pdn3d::transient
