#include "transient/decap.hpp"

namespace pdn3d::transient {

std::vector<double> assign_node_capacitance(const pdn::StackModel& model,
                                            const DecapConfig& config) {
  std::vector<double> caps(model.node_count(), 0.0);

  for (const auto& g : model.grids()) {
    const double cell_area_mm2 = g.dx * g.dy;
    const double nf_per_mm2 =
        g.die == pdn::kPackageDie ? config.package_nf_per_mm2 : config.die_nf_per_mm2;
    const double farads = nf_per_mm2 * 1e-9 * cell_area_mm2;
    // Capacitance belongs to the device side of a die; split evenly across
    // that die's layers so layer stacking does not double-count area.
    int layers_of_die = 0;
    for (const auto& other : model.grids()) {
      if (other.die == g.die) ++layers_of_die;
    }
    const double per_layer = farads / static_cast<double>(layers_of_die);
    for (std::size_t k = 0; k < g.size(); ++k) {
      caps[g.base + k] += per_layer;
    }
  }

  for (const auto& t : model.taps()) {
    caps[t.node] += config.tap_decap_nf * 1e-9;
  }
  return caps;
}

double total_capacitance(const std::vector<double>& node_caps) {
  double s = 0.0;
  for (double c : node_caps) s += c;
  return s;
}

}  // namespace pdn3d::transient
