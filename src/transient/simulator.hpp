#pragma once

/// @file simulator.hpp
/// @brief Transient (RC) droop simulation on the stack R-Mesh.
///
/// Backward-Euler integration of C dv/dt = -G v + b with the same nodal
/// system the DC engine uses plus per-node decap. The system matrix
/// (G + C/dt) is SPD, factorized once (IC(0)) and reused across time steps,
/// so a full step response costs a few hundred PCG solves at most.
///
/// This extends the paper's DC analysis toward its AC remarks (bond wires
/// reaching off-chip decaps, local decap from sub-bank partitioning).

#include <memory>
#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/ichol.hpp"
#include "pdn/stack_model.hpp"

namespace pdn3d::transient {

struct TransientResult {
  std::vector<double> time_ns;       ///< sample times
  std::vector<double> worst_ir_mv;   ///< max DRAM-node IR drop at each time
  double peak_ir_mv = 0.0;           ///< max over the whole window
  double dc_ir_mv = 0.0;             ///< steady-state (t -> inf) value
  double settle_ns = 0.0;            ///< first time within 2% of DC
  double overshoot_fraction = 0.0;   ///< (peak - dc) / dc, 0 when monotone
};

class TransientSimulator {
 public:
  /// @param caps per-node capacitance in farads (node_count entries).
  /// @param dt_s integration step (s). Accuracy ~ O(dt); 50 ps default-ish.
  TransientSimulator(const pdn::StackModel& model, std::span<const double> caps, double dt_s);

  /// Step response: all nodes start at VDD (idle), then @p sinks switch on at
  /// t = 0 and stay. Simulates for @p duration_s.
  [[nodiscard]] TransientResult step_response(std::span<const double> sinks,
                                              double duration_s) const;

  [[nodiscard]] double dt_seconds() const { return dt_; }

 private:
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& rhs,
                                          std::vector<double> guess) const;
  [[nodiscard]] double worst_dram_ir(std::span<const double> v) const;

  const pdn::StackModel& model_;
  double dt_;
  std::vector<double> cap_over_dt_;  ///< C/dt per node
  std::vector<double> supply_rhs_;   ///< sum of g*VDD per node (DC part)
  linalg::Csr system_;               ///< G + C/dt
  linalg::Csr g_only_;               ///< G (for the DC reference)
  std::unique_ptr<linalg::IncompleteCholesky> ic_system_;
  std::unique_ptr<linalg::IncompleteCholesky> ic_g_;
};

}  // namespace pdn3d::transient
