#pragma once

/// @file crowding.hpp
/// @brief Element-current extraction and current-crowding statistics.
///
/// Section 3.2 of the paper (following Zhao/Scheuermann/Lim, TCPMT'14) treats
/// TSV current crowding as a first-class power-integrity concern: when TSVs
/// are few or badly placed, a handful of them carry a disproportionate share
/// of the supply current. These helpers turn a solved node-voltage vector
/// into per-element currents and per-kind crowding statistics.

#include <span>
#include <vector>

#include "pdn/stack_model.hpp"

namespace pdn3d::irdrop {

/// Current through each resistor (amps, |I| of element i = resistors()[i]),
/// computed from node voltages as |v_a - v_b| / R.
std::vector<double> element_currents(const pdn::StackModel& model,
                                     std::span<const double> voltages);

struct CrowdingStats {
  std::size_t count = 0;      ///< elements of the requested kind
  double max_amps = 0.0;      ///< worst single element
  double avg_amps = 0.0;      ///< mean over elements of the kind
  double total_amps = 0.0;    ///< sum (not a physical net current; diagnostic)
  /// max / avg -- 1.0 means perfectly balanced; the paper's crowding concern
  /// is exactly this ratio growing.
  [[nodiscard]] double crowding_factor() const {
    return avg_amps > 0.0 ? max_amps / avg_amps : 0.0;
  }
};

/// Statistics over all elements of @p kind.
CrowdingStats current_stats(const pdn::StackModel& model, std::span<const double> voltages,
                            pdn::ElementKind kind);

}  // namespace pdn3d::irdrop
