#pragma once

/// @file eval_context.hpp
/// @brief Per-thread evaluation handle over a shared IrAnalyzer.
///
/// The ownership rule of the parallel sweep engine in one sentence: platform
/// and stack data (the StackModel, the conductance matrix, the IC(0)/banded
/// factors, the block rasterization) are immutable and shared; everything a
/// solve writes (assembled RHS, CG work vectors, verification products, the
/// sink-current buffer, telemetry tallies) lives in an EvalContext owned by
/// exactly one thread at a time.
///
/// The intended pattern over a ThreadPool:
///
///   EvalContext root(analyzer);
///   pool.parallel_chunks(n, [&](std::size_t c, std::size_t begin, std::size_t end) {
///     EvalContext ctx = root.fork();        // per-chunk scratch, shared analyzer
///     for (std::size_t i = begin; i < end; ++i) results[i] = ctx.analyze(states[i]);
///   });
///
/// fork() is cheap (no matrix or factor copies). Contexts are not
/// thread-safe themselves -- that is the point: all mutable state is
/// confined to one, so no solve-path locking is needed at all.

#include <cstddef>
#include <vector>

#include "irdrop/analysis.hpp"
#include "irdrop/solver.hpp"
#include "power/memory_state.hpp"

namespace pdn3d::irdrop {

class EvalContext {
 public:
  /// @param analyzer shared, immutable; must outlive the context.
  explicit EvalContext(const IrAnalyzer& analyzer) : analyzer_(&analyzer) {}

  /// A fresh context over the same analyzer with its own (empty) scratch and
  /// zeroed stats. Hand one to each worker chunk of a parallel sweep.
  [[nodiscard]] EvalContext fork() const { return EvalContext(*analyzer_); }

  /// Full IR analysis of one memory state, reusing this context's buffers.
  /// Throws core::NumericalError when every solver rung fails.
  [[nodiscard]] IrResult analyze(const power::MemoryState& state);

  /// Raw solve through this context's scratch (the non-analysis entry).
  [[nodiscard]] SolveOutcome solve(const SolveRequest& request);

  /// Opt in to CG warm starts: subsequent solves through this context seed CG
  /// from the previous solve's voltages. Only meaningful on fallback paths
  /// where the sparse-direct factor was declined, and only safe where the
  /// solve order is not part of a determinism contract (the warm-started bits
  /// depend on it) -- see docs/SOLVER.md. Direct rungs are unaffected.
  void set_warm_start(bool on);

  [[nodiscard]] const IrAnalyzer& analyzer() const { return *analyzer_; }

  /// Context-local solve telemetry, merged by the sweep owner in a
  /// deterministic (chunk-index) order after the region completes.
  struct Stats {
    std::size_t analyses = 0;
    std::size_t solves = 0;
    std::size_t escalations = 0;  ///< rung failures recovered by the ladder
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  const IrAnalyzer* analyzer_;  ///< shared, immutable
  SolveScratch scratch_;
  std::vector<double> sinks_;
  Stats stats_;
};

}  // namespace pdn3d::irdrop
