#include "irdrop/montecarlo.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pdn3d::irdrop {

MonteCarloResult sample_ir_distribution(const IrAnalyzer& analyzer,
                                        const floorplan::DramFloorplanSpec& spec,
                                        const MonteCarloConfig& config) {
  if (config.samples <= 0) throw std::invalid_argument("montecarlo: samples must be positive");
  if (config.max_banks_per_die < 1) {
    throw std::invalid_argument("montecarlo: max_banks_per_die must be >= 1");
  }
  PDN3D_TRACE_SPAN_NAMED(span, "montecarlo/run");
  static auto& m_samples = obs::counter("montecarlo.samples");
  static auto& m_skipped = obs::counter("montecarlo.samples_skipped");

  const int dies = analyzer.model().dram_die_count();
  const int banks = spec.bank_cols * spec.bank_rows;

  util::Rng rng(config.seed);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(config.samples));
  int skipped = 0;
  std::string last_failure;
  const std::size_t escalations_before = analyzer.solver().telemetry().escalations;

  for (int s = 0; s < config.samples; ++s) {
    power::MemoryState state;
    state.dies.resize(static_cast<std::size_t>(dies));
    int active_dies = 0;
    for (int d = 0; d < dies; ++d) {
      if (!rng.next_bool(config.die_active_probability)) continue;
      ++active_dies;
      const int count = rng.next_int(1, config.max_banks_per_die);
      auto& die = state.dies[static_cast<std::size_t>(d)];
      while (static_cast<int>(die.active_banks.size()) < count) {
        const int bank = rng.next_int(0, banks - 1);
        if (std::find(die.active_banks.begin(), die.active_banks.end(), bank) ==
            die.active_banks.end()) {
          die.active_banks.push_back(bank);
        }
      }
    }
    if (active_dies == 0) {
      // An all-idle sample carries no information for the margin study.
      --s;  // resample; next_bool advanced the stream so this terminates
      continue;
    }
    state.io_activity = std::min(1.0, config.io_demand / static_cast<double>(active_dies));
    try {
      values.push_back(analyzer.analyze(state).dram_max_mv);
    } catch (const core::NumericalError& e) {
      // Skip-and-report: one unsolvable state must not kill the whole
      // distribution run.
      ++skipped;
      last_failure = e.status().to_string();
    }
  }

  m_samples.add(static_cast<std::uint64_t>(config.samples));
  m_skipped.add(static_cast<std::uint64_t>(skipped));
  span.attribute("samples", static_cast<std::uint64_t>(config.samples));

  MonteCarloResult out;
  out.samples = config.samples - skipped;
  out.skipped_samples = skipped;
  out.last_failure = std::move(last_failure);
  out.solver_escalations = analyzer.solver().telemetry().escalations - escalations_before;
  if (values.empty()) return out;
  out.mean_mv = util::mean(values);
  out.p50_mv = util::percentile(values, 50.0);
  out.p95_mv = util::percentile(values, 95.0);
  out.p99_mv = util::percentile(values, 99.0);
  out.max_mv = util::max_value(values);
  return out;
}

}  // namespace pdn3d::irdrop
