#include "irdrop/montecarlo.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "core/status.hpp"
#include "exec/thread_pool.hpp"
#include "irdrop/eval_context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pdn3d::irdrop {

namespace {

/// Draw one non-all-idle memory state from this sample's private stream. An
/// all-idle draw carries no information for the margin study, so we redraw
/// within the same stream (the stream advanced, so this terminates) -- the
/// parallel analogue of the old serial `--s; continue` resample.
power::MemoryState draw_state(util::Rng& rng, int dies, int banks,
                              const MonteCarloConfig& config) {
  for (;;) {
    power::MemoryState state;
    state.dies.assign(static_cast<std::size_t>(dies), {});
    int active_dies = 0;
    for (int d = 0; d < dies; ++d) {
      if (!rng.next_bool(config.die_active_probability)) continue;
      ++active_dies;
      const int count = rng.next_int(1, config.max_banks_per_die);
      auto& die = state.dies[static_cast<std::size_t>(d)];
      while (static_cast<int>(die.active_banks.size()) < count) {
        const int bank = rng.next_int(0, banks - 1);
        if (std::find(die.active_banks.begin(), die.active_banks.end(), bank) ==
            die.active_banks.end()) {
          die.active_banks.push_back(bank);
        }
      }
    }
    if (active_dies == 0) continue;
    state.io_activity = std::min(1.0, config.io_demand / static_cast<double>(active_dies));
    return state;
  }
}

}  // namespace

MonteCarloResult sample_ir_distribution(const IrAnalyzer& analyzer,
                                        const floorplan::DramFloorplanSpec& spec,
                                        const MonteCarloConfig& config) {
  if (config.samples <= 0) throw std::invalid_argument("montecarlo: samples must be positive");
  if (config.max_banks_per_die < 1) {
    throw std::invalid_argument("montecarlo: max_banks_per_die must be >= 1");
  }
  if (config.threads < 0) throw std::invalid_argument("montecarlo: threads must be >= 0");
  PDN3D_TRACE_SPAN_NAMED(span, "montecarlo/run");
  static auto& m_samples = obs::counter("montecarlo.samples");
  static auto& m_skipped = obs::counter("montecarlo.samples_skipped");

  const int dies = analyzer.model().dram_die_count();
  const int banks = spec.bank_cols * spec.bank_rows;
  const std::size_t n = static_cast<std::size_t>(config.samples);
  const std::size_t escalations_before = analyzer.solver().telemetry().escalations;

  // Per-sample result slots: the pool guarantees slot i is written by the
  // worker that claimed sample i, and every statistic below is computed from
  // the slots in index order -- thread count never changes the answer.
  std::vector<double> values(n, 0.0);
  std::vector<unsigned char> solved(n, 0);
  std::vector<std::string> failures(n);

  exec::ThreadPool pool(static_cast<std::size_t>(config.threads));
  EvalContext root(analyzer);
  pool.parallel_chunks(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    EvalContext ctx = root.fork();
    for (std::size_t s = begin; s < end; ++s) {
      if (config.checkpoint != nullptr) {
        if (const util::CheckpointEntry* entry = config.checkpoint->find(s)) {
          if (entry->ok) {
            values[s] = entry->value;
            solved[s] = 1;
          } else {
            failures[s] = entry->message;
          }
          continue;
        }
      }
      util::Rng rng = util::Rng::split(config.seed, s);
      const power::MemoryState state = draw_state(rng, dies, banks, config);
      try {
        values[s] = ctx.analyze(state).dram_max_mv;
        solved[s] = 1;
      } catch (const core::NumericalError& e) {
        // A cancellation must abort the sweep, not be skipped as a sample.
        if (e.status().code() == core::StatusCode::kCancelled) throw;
        // Skip-and-report: one unsolvable state must not kill the whole
        // distribution run.
        failures[s] = e.status().to_string();
      }
      if (config.checkpoint != nullptr) {
        config.checkpoint->record(s, {solved[s] != 0, values[s], failures[s]});
      }
    }
  });
  if (config.checkpoint != nullptr) config.checkpoint->flush();

  std::vector<double> kept;
  kept.reserve(n);
  int skipped = 0;
  std::string last_failure;
  for (std::size_t s = 0; s < n; ++s) {
    if (solved[s]) {
      kept.push_back(values[s]);
    } else {
      ++skipped;
      last_failure = failures[s];  // highest-index skip, as a serial run reports
    }
  }

  m_samples.add(static_cast<std::uint64_t>(config.samples));
  m_skipped.add(static_cast<std::uint64_t>(skipped));
  span.attribute("samples", static_cast<std::uint64_t>(config.samples));

  MonteCarloResult out;
  out.samples = config.samples - skipped;
  out.skipped_samples = skipped;
  out.last_failure = std::move(last_failure);
  // The telemetry counters are atomic and the same solves run at any thread
  // count, so this delta is exact even when the run was concurrent.
  out.solver_escalations = analyzer.solver().telemetry().escalations - escalations_before;
  if (kept.empty()) return out;
  out.mean_mv = util::mean(kept);
  out.p50_mv = util::percentile(kept, 50.0);
  out.p95_mv = util::percentile(kept, 95.0);
  out.p99_mv = util::percentile(kept, 99.0);
  out.max_mv = util::max_value(kept);
  return out;
}

}  // namespace pdn3d::irdrop
