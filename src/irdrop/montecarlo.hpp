#pragma once

/// @file montecarlo.hpp
/// @brief Monte Carlo IR-drop analysis over random memory states.
///
/// The paper evaluates worst-case states (edge-column banks). A designer
/// usually also wants the *distribution*: how much margin does the worst
/// case carry over typical operation? This sampler draws random states --
/// random active-die subsets, random bank locations per die -- and reports
/// IR-drop percentiles.

#include <cstdint>
#include <string>

#include "irdrop/analysis.hpp"

namespace pdn3d::util {
class SweepCheckpoint;
}

namespace pdn3d::irdrop {

struct MonteCarloConfig {
  int samples = 200;
  int max_banks_per_die = 2;  ///< charge-pump interleave limit
  /// Workload I/O demand (activity = min(1, demand / active dies)).
  double io_demand = 1.0;
  /// Probability a die has any active banks in a sample.
  double die_active_probability = 0.5;
  std::uint64_t seed = 0xd1ce5eedULL;
  /// Worker threads for the sweep; 0 = exec::default_thread_count(). Each
  /// sample draws from its own counter-derived RNG stream
  /// (util::Rng::split(seed, sample)), so the distribution -- and every
  /// reported statistic -- is bitwise identical at any thread count.
  int threads = 0;
  /// Optional crash-safe checkpoint (non-owning). Samples found in it are
  /// loaded instead of recomputed; freshly computed samples are recorded.
  /// Because each sample's RNG stream is independent, a resumed run is
  /// bitwise identical to an uninterrupted one (docs/ROBUSTNESS.md).
  util::SweepCheckpoint* checkpoint = nullptr;
};

struct MonteCarloResult {
  int samples = 0;  ///< samples that produced a verified solve
  double mean_mv = 0.0;
  double p50_mv = 0.0;
  double p95_mv = 0.0;
  double p99_mv = 0.0;
  double max_mv = 0.0;  ///< worst sampled state (not the analytic worst case)

  // Numerical-health telemetry: states the solver could not handle are
  // skipped (and counted) instead of aborting the whole distribution run.
  int skipped_samples = 0;            ///< solves that exhausted the ladder
  std::size_t solver_escalations = 0; ///< rung retries across the whole run
  std::string last_failure;           ///< reason of the most recent skip
};

/// Run the sampler. The analyzer's stack determines die/bank counts.
MonteCarloResult sample_ir_distribution(const IrAnalyzer& analyzer,
                                        const floorplan::DramFloorplanSpec& spec,
                                        const MonteCarloConfig& config = {});

}  // namespace pdn3d::irdrop
