#pragma once

/// @file macromodel.hpp
/// @brief Stack partitioning and the shared reuse context of the hierarchical
/// (Schur macromodel) solver tier.
///
/// The tier lives in linalg/schur.hpp; this file supplies what it needs from
/// the pdn side: the per-die node partition of a StackModel, and a
/// MacromodelContext -- the process/platform-shared state that makes the tier
/// pay off across design points. The context holds the fingerprint-keyed
/// SchurBlockCache (identical dies rebuild nothing, within one stack or
/// across sweep neighbors) and a registry of base macromodels so a design
/// delta that touches only a few nodes (TSV count/placement, one die's metal
/// usage) rides a WoodburyUpdate on a neighbor's factorizations instead of
/// refactoring anything.
///
/// Thread-safety: MacromodelContext is internally synchronized; one context
/// is shared by all of a Platform's evaluation contexts.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/schur.hpp"
#include "pdn/stack_model.hpp"

namespace pdn3d::irdrop {

/// Per-node block ids (contiguous from 0) partitioning a stack by die:
/// package plane, logic die, and each DRAM die get one block each, in
/// die-code order. This is the partition SchurMacromodel eliminates --
/// cross-block elements are exactly the TSV/C4/F2F/bond interfaces.
[[nodiscard]] std::vector<int> stack_partition(const pdn::StackModel& model);

/// Shared reuse state of the hierarchical tier. Solvers of one sweep (or one
/// Platform) point at a common context through IrSolverOptions; everything
/// here is keyed by content fingerprints, so sharing is safe across designs.
class MacromodelContext {
 public:
  /// Fingerprint-keyed per-die elimination blocks (see SchurBlockCache).
  [[nodiscard]] linalg::SchurBlockCache& blocks() { return blocks_; }
  [[nodiscard]] const linalg::SchurBlockCache& blocks() const { return blocks_; }

  /// Guards forwarded to every macromodel built through this context.
  [[nodiscard]] linalg::SchurOptions& options() { return options_; }

  /// The registered base macromodel for meshes of @p dimension nodes, or
  /// null. Sweep neighbors of the same mesh size try a Woodbury overlay on
  /// this before building their own.
  [[nodiscard]] std::shared_ptr<const linalg::SchurMacromodel> base_for(
      std::size_t dimension) const;

  /// Register @p base as the Woodbury anchor for its dimension (latest
  /// registration wins). Only explicit anchor preparation calls this
  /// (Platform::prepare_sweep before the workers start) -- solvers never
  /// auto-register the macromodels they build, so which anchor a sweep point
  /// sees is independent of worker arrival order and results stay bitwise
  /// identical at any thread count.
  void register_base(std::shared_ptr<const linalg::SchurMacromodel> base);

 private:
  linalg::SchurBlockCache blocks_;
  linalg::SchurOptions options_;
  mutable std::mutex mutex_;
  std::map<std::size_t, std::shared_ptr<const linalg::SchurMacromodel>> bases_;
};

}  // namespace pdn3d::irdrop
