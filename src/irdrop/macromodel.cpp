#include "irdrop/macromodel.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdn3d::irdrop {

std::vector<int> stack_partition(const pdn::StackModel& model) {
  // Die codes present, ascending (package -2, logic -1, DRAM 0..n-1), mapped
  // to contiguous block ids.
  std::vector<int> dies;
  for (const auto& grid : model.grids()) {
    if (std::find(dies.begin(), dies.end(), grid.die) == dies.end()) dies.push_back(grid.die);
  }
  std::sort(dies.begin(), dies.end());

  std::vector<int> block_of(model.node_count(), -1);
  for (const auto& grid : model.grids()) {
    const int block = static_cast<int>(
        std::lower_bound(dies.begin(), dies.end(), grid.die) - dies.begin());
    for (std::size_t i = 0; i < grid.size(); ++i) block_of[grid.base + i] = block;
  }
  for (const int b : block_of) {
    if (b < 0) throw std::logic_error("stack_partition: node outside every layer grid");
  }
  return block_of;
}

std::shared_ptr<const linalg::SchurMacromodel> MacromodelContext::base_for(
    std::size_t dimension) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = bases_.find(dimension);
  return it == bases_.end() ? nullptr : it->second;
}

void MacromodelContext::register_base(std::shared_ptr<const linalg::SchurMacromodel> base) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bases_[base->dimension()] = std::move(base);
}

}  // namespace pdn3d::irdrop
