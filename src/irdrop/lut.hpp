#pragma once

/// @file lut.hpp
/// @brief IR-drop look-up table over memory states (Section 5.2).
///
/// The paper's IR-drop-aware read policy consults a precomputed table of the
/// max IR drop of each memory state (active-bank count per die, with the
/// shared-bandwidth I/O activity convention). The memory controller then
/// admits a bank activation only if the resulting state stays under the IR
/// constraint.

#include <istream>
#include <ostream>
#include <vector>

#include "irdrop/analysis.hpp"

namespace pdn3d::util {
class SweepCheckpoint;
}

namespace pdn3d::irdrop {

class IrLut {
 public:
  /// Build by running the R-Mesh on every state with 0..max_per_die active
  /// banks per die (the paper's interleave limit is 2, bounded by the charge
  /// pump). Worst-case bank locations (edge column) are assumed, matching
  /// Section 5.1.
  ///
  /// @param io_demand total I/O demand of the workload as a fraction of one
  /// channel's peak; active dies share it, so a state with k active dies is
  /// evaluated at activity min(1, io_demand / k). io_demand = 1 reproduces
  /// the paper's zero-bubble convention.
  /// @param threads worker threads for the state sweep; 0 =
  /// exec::default_thread_count(). Entry `key` is computed from state `key`
  /// alone, so the table is identical at any thread count.
  /// @param checkpoint optional crash-safe checkpoint (non-owning): entries
  /// found in it are loaded instead of recomputed, fresh entries are
  /// recorded, and a resumed build is bitwise identical to an uninterrupted
  /// one (warm starts are disabled while checkpointing so every entry stays a
  /// pure function of its key).
  static IrLut build(const IrAnalyzer& analyzer, const floorplan::DramFloorplanSpec& spec,
                     int max_per_die = 2, double io_demand = 1.0, int threads = 0,
                     util::SweepCheckpoint* checkpoint = nullptr);

  /// Max IR drop (mV) of the state with the given per-die active-bank counts.
  [[nodiscard]] double max_ir_mv(const std::vector<int>& counts) const;

  [[nodiscard]] int die_count() const { return die_count_; }
  [[nodiscard]] int max_per_die() const { return max_per_die_; }

  /// Largest entry (the design's worst-case memory state).
  [[nodiscard]] double worst_case_mv() const;

  /// Worst-case state itself.
  [[nodiscard]] std::vector<int> worst_case_state() const;

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// Serialize to a small text format ("pdn3d-lut v1" header, then one
  /// state/value pair per line) so the controller can consume a stored table
  /// without rerunning the R-Mesh -- the paper's look-up-table hand-off.
  void save(std::ostream& os) const;

  /// Load a table written by save(). Throws std::runtime_error on malformed
  /// input.
  static IrLut load(std::istream& is);

 private:
  IrLut(int die_count, int max_per_die, std::vector<double> table)
      : die_count_(die_count), max_per_die_(max_per_die), table_(std::move(table)) {}

  [[nodiscard]] std::size_t index(const std::vector<int>& counts) const;

  int die_count_ = 0;
  int max_per_die_ = 0;
  std::vector<double> table_;
};

}  // namespace pdn3d::irdrop
