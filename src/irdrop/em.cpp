#include "irdrop/em.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdn3d::irdrop {

namespace {

/// Boltzmann constant in eV/K.
constexpr double kBoltzmannEvPerK = 8.617333262e-5;

/// 1 MA/cm^2 == 10 mA/um^2, so J[MA/cm^2] = 100 * I[A] / A[um^2].
constexpr double kAmpsPerUm2ToMaCm2 = 100.0;

/// Gauge values must survive a JSON round trip; enormous-but-finite stands in
/// for "effectively unstressed".
constexpr double kMttfCapHours = 1e30;

const std::array<pdn::ElementKind, 6> kAllKinds = {
    pdn::ElementKind::kMesh, pdn::ElementKind::kVia,    pdn::ElementKind::kTsv,
    pdn::ElementKind::kF2fVia, pdn::ElementKind::kC4,   pdn::ElementKind::kRdlVia,
};

/// Grids are registered with contiguous, increasing node-id bases, so the
/// owning grid of a node is found by binary search on `base`.
const pdn::LayerGrid& owning_grid(const pdn::StackModel& model, std::size_t node) {
  const auto& grids = model.grids();
  auto it = std::upper_bound(grids.begin(), grids.end(), node,
                             [](std::size_t n, const pdn::LayerGrid& g) { return n < g.base; });
  if (it == grids.begin()) throw std::invalid_argument("em_check: node before first grid");
  return *std::prev(it);
}

[[noreturn]] void fail_area(const std::string& what) {
  throw std::invalid_argument("em_check: non-positive cross-section for " + what +
                              " (zero-thickness/diameter tech entry?)");
}

/// Cross-section of one resistor element in um^2.
double element_area_um2(const pdn::StackModel& model, const tech::EmTech& em,
                        const pdn::Resistor& r) {
  switch (r.kind) {
    case pdn::ElementKind::kTsv: {
      const double a = em.tsv_area_um2();
      if (a <= 0.0) fail_area("tsv");
      return a;
    }
    case pdn::ElementKind::kC4: {
      const double a = em.c4_area_um2();
      if (a <= 0.0) fail_area("c4");
      return a;
    }
    case pdn::ElementKind::kVia:
      if (em.via_area_um2 <= 0.0) fail_area("via");
      return em.via_area_um2;
    case pdn::ElementKind::kF2fVia:
      if (em.f2f_via_area_um2 <= 0.0) fail_area("f2f-via");
      return em.f2f_via_area_um2;
    case pdn::ElementKind::kRdlVia:
      if (em.rdl_via_area_um2 <= 0.0) fail_area("rdl-via");
      return em.rdl_via_area_um2;
    case pdn::ElementKind::kMesh: {
      // In-plane stripe bundle: width = usage * perpendicular cell span. The
      // builder stamps mesh resistors between adjacent nodes of one grid, so
      // the node-id delta tells the direction (1 = along x, nx = along y).
      const pdn::LayerGrid& g = owning_grid(model, std::min(r.a, r.b));
      const std::size_t delta = std::max(r.a, r.b) - std::min(r.a, r.b);
      const double span_mm = delta == 1 ? g.dy : g.dx;
      const double area = g.vdd_usage * span_mm * 1000.0 * g.thickness_um;
      if (area <= 0.0) fail_area("mesh segment on " + g.name);
      return area;
    }
  }
  throw std::invalid_argument("em_check: unknown element kind");
}

double resolve_limit(const tech::EmTech& em, const EmOptions& opts, pdn::ElementKind kind) {
  switch (kind) {
    case pdn::ElementKind::kMesh: return opts.wire_limit_ma_cm2.value_or(em.wire_limit_ma_cm2);
    case pdn::ElementKind::kTsv: return opts.tsv_limit_ma_cm2.value_or(em.tsv_limit_ma_cm2);
    default: return em.via_limit_ma_cm2;
  }
}

}  // namespace

const EmKindStats* EmReport::find(pdn::ElementKind k) const {
  for (const auto& s : kinds) {
    if (s.kind == k) return &s;
  }
  return nullptr;
}

double black_mttf_hours(const tech::EmTech& em, double j_ma_cm2, double temperature_c) {
  if (j_ma_cm2 <= 0.0) return 0.0;
  const double kelvin = temperature_c + 273.15;
  if (kelvin <= 0.0) throw std::invalid_argument("black_mttf_hours: temperature below 0 K");
  const double mttf =
      em.black_a_hours * std::pow(j_ma_cm2, -em.black_n) *
      std::exp(em.activation_energy_ev / (kBoltzmannEvPerK * kelvin));
  return std::min(mttf, kMttfCapHours);
}

EmReport em_check(const pdn::StackModel& model, const tech::Technology& tech,
                  std::span<const double> voltages, const EmOptions& options) {
  if (voltages.size() != model.node_count()) {
    throw std::invalid_argument("em_check: voltage vector size mismatch");
  }
  PDN3D_TRACE_SPAN("irdrop/em_check");
  static auto& m_checks = obs::counter("solver.em.checks");
  static auto& m_violations = obs::counter("solver.em.violations");
  m_checks.add(1);

  const tech::EmTech& em = tech.em;
  EmReport report;
  report.temperature_c = options.temperature_c.value_or(em.temperature_c);

  // One pass over the resistors, accumulating per-kind extrema/sums.
  struct Accum {
    CrowdingStats current;
    double max_j = 0.0;
    double sum_j = 0.0;
    std::size_t violations = 0;
  };
  std::array<Accum, kAllKinds.size()> acc;
  std::array<double, kAllKinds.size()> limits{};
  for (std::size_t k = 0; k < kAllKinds.size(); ++k) {
    limits[k] = resolve_limit(em, options, kAllKinds[k]);
  }

  for (const auto& r : model.resistors()) {
    const auto k = static_cast<std::size_t>(r.kind);
    const double amps = std::abs(voltages[r.a] - voltages[r.b]) / r.ohms;
    const double j = kAmpsPerUm2ToMaCm2 * amps / element_area_um2(model, em, r);
    Accum& a = acc[k];
    ++a.current.count;
    a.current.total_amps += amps;
    if (amps > a.current.max_amps) a.current.max_amps = amps;
    a.sum_j += j;
    if (j > a.max_j) a.max_j = j;
    if (j > limits[k]) ++a.violations;
  }

  for (std::size_t k = 0; k < kAllKinds.size(); ++k) {
    Accum& a = acc[k];
    if (a.current.count == 0) continue;
    const auto n = static_cast<double>(a.current.count);
    a.current.avg_amps = a.current.total_amps / n;
    EmKindStats stats;
    stats.kind = kAllKinds[k];
    stats.current = a.current;
    stats.max_j_ma_cm2 = a.max_j;
    stats.avg_j_ma_cm2 = a.sum_j / n;
    stats.limit_ma_cm2 = limits[k];
    stats.violations = a.violations;
    stats.mttf_hours = black_mttf_hours(em, a.max_j, report.temperature_c);
    report.kinds.push_back(stats);

    report.total_violations += stats.violations;
    report.worst_utilization = std::max(report.worst_utilization, stats.utilization());
    if (stats.mttf_hours > 0.0 &&
        (report.min_mttf_hours == 0.0 || stats.mttf_hours < report.min_mttf_hours)) {
      report.min_mttf_hours = stats.mttf_hours;
    }
  }

  m_violations.add(report.total_violations);
  obs::gauge("solver.em.worst_utilization").set(report.worst_utilization);
  obs::gauge("solver.em.min_mttf_hours").set(report.min_mttf_hours);
  return report;
}

}  // namespace pdn3d::irdrop
