#pragma once

/// @file solver.hpp
/// @brief DC operating-point solver for a StackModel (the HSPICE substitute).
///
/// Nodal analysis with the ideal VDD rail eliminated: every supply tap of
/// conductance g contributes g to its node's diagonal and g*VDD to the RHS;
/// block currents are sinks on the RHS. The conductance matrix is SPD, solved
/// with IC(0)-preconditioned CG. The matrix and preconditioner are built once
/// per design point and reused across memory states (only the RHS changes),
/// which is what makes LUT construction and co-optimization sweeps cheap.

#include <memory>
#include <span>
#include <vector>

#include "linalg/banded.hpp"
#include "linalg/cg.hpp"
#include "linalg/csr.hpp"
#include "linalg/ichol.hpp"
#include "pdn/stack_model.hpp"

namespace pdn3d::irdrop {

enum class SolverKind {
  kPcgIc,         ///< IC(0)-preconditioned CG (default, fast)
  kPcgJacobi,     ///< Jacobi-preconditioned CG
  kBandedDirect,  ///< RCM + banded Cholesky: factor once, O(n*b) per state
  kDense,         ///< dense Cholesky -- exact reference ("signoff") path
};

class IrSolver {
 public:
  explicit IrSolver(const pdn::StackModel& model, SolverKind kind = SolverKind::kPcgIc);

  /// Node voltages for the given per-node sink currents (amps, >= 0 draws
  /// current). @p sinks must have model.node_count() entries.
  [[nodiscard]] std::vector<double> solve(std::span<const double> sinks) const;

  /// IR drop per node (VDD - v), volts.
  [[nodiscard]] std::vector<double> solve_ir(std::span<const double> sinks) const;

  [[nodiscard]] std::size_t node_count() const { return g_.dimension(); }
  [[nodiscard]] double vdd() const { return vdd_; }
  [[nodiscard]] const linalg::Csr& conductance_matrix() const { return g_; }

  /// Iterations used by the last CG solve (0 for the dense path).
  [[nodiscard]] std::size_t last_iterations() const { return last_iterations_; }

 private:
  SolverKind kind_;
  double vdd_;
  linalg::Csr g_;
  std::vector<double> supply_rhs_;  ///< sum of g*VDD per node
  std::unique_ptr<linalg::IncompleteCholesky> ic_;
  std::unique_ptr<linalg::BandedCholesky> banded_;
  mutable std::size_t last_iterations_ = 0;
};

}  // namespace pdn3d::irdrop
