#pragma once

/// @file solver.hpp
/// @brief DC operating-point solver for a StackModel (the HSPICE substitute).
///
/// Nodal analysis with the ideal VDD rail eliminated: every supply tap of
/// conductance g contributes g to its node's diagonal and g*VDD to the RHS;
/// block currents are sinks on the RHS. The conductance matrix is SPD, solved
/// with IC(0)-preconditioned CG. The matrix and preconditioner are built once
/// per design point and reused across memory states (only the RHS changes),
/// which is what makes LUT construction and co-optimization sweeps cheap.
///
/// Numerical health: construction runs the pdn mesh validator (floating
/// nodes, non-positive conductances, zero-tap dies) and throws a structured
/// core::ValidationError on defects. Each solve climbs an escalation ladder
/// -- sparse direct -> IC-PCG -> Jacobi-PCG -> RCM banded direct -> dense
/// Cholesky -- starting at the configured kind, and accepts a rung's answer
/// only after verifying the true residual. The result is that every solve is
/// either verified-correct or a structured, recoverable error (SolveOutcome /
/// core::NumericalError); never silent garbage.
///
/// The sparse-direct rung is the same-matrix/many-RHS fast path: a cached
/// sparse Cholesky factor built once per solver instance (once_flag), after
/// which every solve is two triangular sweeps. Sweeps declare their access
/// pattern through select_solver_kind(expected_solves); one-shot callers keep
/// ic-pcg. A factorization the fill-ratio guard declines simply fails the
/// rung and the ladder escalates as usual (see docs/SOLVER.md).
///
/// Above sparse-direct sits the hierarchical macromodel rung (kMacromodel):
/// per-die Schur elimination blocks shared through a MacromodelContext, a
/// small reduced interface system per design point, and Woodbury overlays for
/// design deltas that touch only a few nodes (see linalg/schur.hpp and the
/// "Hierarchical tier" section of docs/SOLVER.md). It is chosen only by
/// callers that declare cross-design reuse (select_solver_kind with a
/// ReuseHint); every answer it produces passes the same true-residual
/// verification as any other rung, and any guard decline or verification
/// failure falls through to sparse-direct and onward down the ladder.

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "irdrop/macromodel.hpp"
#include "linalg/banded.hpp"
#include "linalg/cg.hpp"
#include "linalg/csr.hpp"
#include "linalg/ichol.hpp"
#include "linalg/schur.hpp"
#include "linalg/sparse_chol.hpp"
#include "pdn/stack_model.hpp"

namespace pdn3d::irdrop {

enum class SolverKind {
  kMacromodel,    ///< hierarchical Schur macromodels + Woodbury design deltas
  kSparseDirect,  ///< RCM + sparse Cholesky: factor once, two sweeps per RHS
  kPcgIc,         ///< IC(0)-preconditioned CG (default, fast)
  kPcgJacobi,     ///< Jacobi-preconditioned CG
  kBandedDirect,  ///< RCM + banded Cholesky: factor once, O(n*b) per state
  kDense,         ///< dense Cholesky -- exact reference ("signoff") path
};

inline constexpr std::size_t kSolverKindCount = 6;

[[nodiscard]] const char* to_string(SolverKind kind);

/// Method auto-selection: callers that know how many same-matrix solves they
/// are about to run (LUT builds, Monte Carlo sweeps, co-optimizer sampling)
/// declare it and get the cached-factor sparse-direct path once the
/// factorization amortizes; one-shot solves keep ic-pcg.
[[nodiscard]] SolverKind select_solver_kind(std::size_t expected_solves);

/// What a sweep knows about reuse *across* design points (the per-point
/// same-matrix solve count is the other select_solver_kind argument).
enum class ReuseHint {
  kNone,        ///< independent meshes; nothing shared between points
  kSharedDies,  ///< points share die sub-meshes / differ by small deltas
                ///< (TSV count/placement, one die's metal usage)
};

/// Reuse-aware selection: with ReuseHint::kSharedDies and enough design
/// points to amortize the macromodel build, pick the hierarchical tier;
/// otherwise defer to select_solver_kind(expected_solves). The tier is never
/// auto-selected without the hint -- a lone design point would pay the
/// per-die elimination for nothing.
[[nodiscard]] SolverKind select_solver_kind(std::size_t expected_solves, ReuseHint hint,
                                            std::size_t expected_design_points);

/// Expected solve count at which select_solver_kind switches to the cached
/// sparse-direct factor (factorization ~ a handful of PCG solves).
inline constexpr std::size_t kSparseDirectMinSolves = 8;

/// Design-point count at which shared-die sweeps switch to the hierarchical
/// macromodel tier (block builds amortize across points via the cache and
/// Woodbury overlays).
inline constexpr std::size_t kMacromodelMinDesignPoints = 4;

struct IrSolverOptions {
  double cg_rel_tolerance = 1e-10;
  std::size_t cg_max_iterations = 20000;
  /// A rung's answer is accepted only if ||b - Gx|| / ||b|| is finite and at
  /// most this; otherwise the rung counts as failed and the ladder escalates.
  double verify_rel_tol = 1e-7;
  /// Climb to sturdier rungs on failure. Off = fail fast on the configured
  /// kind only (used by tests that probe a single rung).
  bool escalate = true;
  /// Run the mesh validator at construction (throws core::ValidationError on
  /// defects). Off only for callers that already validated.
  bool validate = true;
  /// Escalating *into* the dense rung is capped at this dimension (the O(n^2)
  /// memory and O(n^3) factor are hopeless on full stacks). An explicitly
  /// requested kDense start rung is always honored.
  std::size_t dense_escalation_limit = 4096;
  /// Fill guard for the sparse-direct factor: the factorization is declined
  /// (rung fails, ladder escalates) when nnz(L) would exceed this multiple of
  /// the lower triangle of G. The paper's 3D stack meshes factor at fill
  /// 40-65 under RCM; the default admits them (see SparseCholeskyOptions).
  double max_fill_ratio = 96.0;
  /// Shared reuse context of the hierarchical macromodel rung (die-block
  /// cache + Woodbury base registry). Null = the rung builds private blocks
  /// and never reuses across solver instances; set by sweeps that share a
  /// Platform's context.
  std::shared_ptr<MacromodelContext> macromodel;
  /// Woodbury overlays are declined (falling back to a fresh macromodel
  /// build through the block cache) when a design delta touches more nodes
  /// than this -- beyond it the m base solves of the overlay build cost more
  /// than re-eliminating through cached blocks.
  std::size_t woodbury_max_rank = 256;
};

/// Per-rung retry counters, accumulated across all solves of this solver
/// instance. Surfaced through IrAnalyzer / Monte Carlo so sweeps can report
/// how often the ladder saved a design point. Counters are atomic: solving
/// is const and updates them from concurrent sweeps (Monte Carlo, future
/// threaded co-optimization), which used to tear under the plain mutable
/// size_t fields. Process-wide aggregates of the same events live in the
/// metrics registry under `solver.*` (see docs/OBSERVABILITY.md).
struct SolveTelemetry {
  std::atomic<std::size_t> solves{0};       ///< successful solves
  std::atomic<std::size_t> failures{0};     ///< solves that exhausted the ladder
  std::atomic<std::size_t> escalations{0};  ///< rung failures that moved down the ladder
  std::array<std::atomic<std::size_t>, kSolverKindCount> rung_attempts{};
  std::array<std::atomic<std::size_t>, kSolverKindCount> rung_failures{};
};

/// One solve, fully specified. This is the single entry shape (the historical
/// span-based convenience trio was removed after its deprecation cycle).
/// @ref sinks is non-owning and must stay alive for the duration of the call.
struct SolveRequest {
  std::span<const double> sinks;  ///< per-node sink currents (amps, >= 0 draws)
  bool want_ir = false;           ///< return VDD - v (IR drop) instead of v
  /// Multi-RHS batch: @ref sinks holds batch_count sink vectors back to back
  /// (each node_count() long, RHS-major). SolveOutcome::x comes back in the
  /// same index order, each solution bitwise identical to a stand-alone solve
  /// of that slice. A batch succeeds only as a whole: if any right-hand side
  /// exhausts the ladder the outcome is the failure and x stays empty.
  std::size_t batch_count = 1;
};

/// Structured result of one solve attempt. `x` is written only after residual
/// verification succeeds on some rung -- callers can never observe a
/// partially-written or unverified solution, no matter how many rungs the
/// escalation ladder burned through first. For batched requests the scalar
/// telemetry aggregates across the batch (iterations and escalations sum,
/// rel_residual is the worst slice, kind_used is the last slice's rung).
struct SolveOutcome {
  core::Status status;     ///< ok, or kInputError / kNumericalFailure
  std::vector<double> x;   ///< node voltages (or IR drops); empty when !status.is_ok()
  SolverKind kind_used = SolverKind::kPcgIc;  ///< rung that produced x
  std::size_t iterations = 0;                 ///< CG iterations (0 for direct)
  double rel_residual = 0.0;                  ///< verified ||b - Gx|| / ||b||
  std::size_t escalations = 0;                ///< rungs that failed first

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// Per-solve work buffers (assembled RHS, verification product, CG vectors).
/// Solving allocates these fresh when none is supplied; a sweep keeps one
/// SolveScratch per evaluation context (see EvalContext) and reuses it across
/// thousands of same-sized solves. Never share one across concurrent solves.
struct SolveScratch {
  std::vector<double> rhs;  ///< supply_rhs - sinks
  std::vector<double> ax;   ///< G*x for residual verification
  linalg::CgScratch cg;
  /// Warm-start opt-in: when true, CG rungs start from `warm` (the previous
  /// successful solve's voltages through this scratch) instead of zero.
  /// Direct rungs are exact and ignore it. Off by default because a warm
  /// start makes the converged bits depend on solve order -- only enable it
  /// on paths exempt from the cross-thread-count determinism contract (the
  /// sequential LUT fallback when the sparse factor was declined).
  bool warm_start = false;
  std::vector<double> warm;       ///< previous voltages (never IR-converted)
  std::vector<double> batch_rhs;  ///< batched fast-path right-hand sides
  std::vector<double> batch_x;    ///< batched fast-path solutions
  std::vector<double> direct;     ///< triangular-sweep workspace
  linalg::SchurScratch schur;     ///< macromodel-rung workspace
};

class IrSolver {
 public:
  /// @throws core::ValidationError (a std::invalid_argument) when the mesh
  /// fails pre-solve validation.
  explicit IrSolver(const pdn::StackModel& model, SolverKind kind = SolverKind::kPcgIc,
                    IrSolverOptions options = {});

  /// The unified entry point. request.sinks must have model.node_count()
  /// entries (std::invalid_argument otherwise -- a caller bug); every
  /// data-dependent failure comes back in SolveOutcome::status. Thread-safe:
  /// concurrent solves on one IrSolver are supported as long as each caller
  /// passes its own @p scratch (or none).
  [[nodiscard]] SolveOutcome solve(const SolveRequest& request,
                                   SolveScratch* scratch = nullptr) const;

  [[nodiscard]] std::size_t node_count() const { return g_.dimension(); }
  [[nodiscard]] double vdd() const { return vdd_; }
  [[nodiscard]] const linalg::Csr& conductance_matrix() const { return g_; }
  /// The configured starting rung (the ladder may still escalate past it).
  [[nodiscard]] SolverKind kind() const { return kind_; }

  /// True when the cached sparse-direct factor exists, building it on first
  /// call (once_flag; concurrent callers race safely). Sweeps use this to
  /// decide whether the sequential warm-start fallback is worth enabling.
  [[nodiscard]] bool sparse_factor_available() const;

  /// True when the hierarchical macromodel exists (built or reused through
  /// the context), building it on first call. A decline (guard, Woodbury
  /// rank cap with no cheap rebuild) is sticky -- the rung fails from then
  /// on and the ladder starts at sparse-direct.
  [[nodiscard]] bool macromodel_available() const;

  /// The hierarchical rung's base macromodel (built on first call), or null
  /// when the rung declined. Platforms register this in their
  /// MacromodelContext as the deterministic Woodbury anchor of a sweep.
  [[nodiscard]] std::shared_ptr<const linalg::SchurMacromodel> macromodel_base() const;

  /// @deprecated Iterations used by the last successful solve (0 for direct
  /// rungs). Under concurrency this is "some recent solve" -- prefer
  /// SolveOutcome::iterations, which is per-request.
  [[nodiscard]] std::size_t last_iterations() const {
    return last_iterations_.load(std::memory_order_relaxed);
  }
  /// @deprecated Rung of the last successful solve; same caveat as
  /// last_iterations(). Prefer SolveOutcome::kind_used.
  [[nodiscard]] SolverKind last_kind_used() const {
    return last_kind_used_.load(std::memory_order_relaxed);
  }

  /// Cumulative per-rung retry counters for this solver instance.
  [[nodiscard]] const SolveTelemetry& telemetry() const { return telemetry_; }

 private:
  struct RungResult {
    bool produced = false;   ///< rung ran and returned an x to verify
    std::vector<double> x;
    std::size_t iterations = 0;
    std::string detail;      ///< failure context when rejected
  };

  /// The hierarchical rung's solve engine: a base macromodel, optionally
  /// composed with a Woodbury overlay for this solver's design delta.
  struct Hierarchical {
    std::shared_ptr<const linalg::SchurMacromodel> base;
    std::unique_ptr<linalg::WoodburyUpdate> update;  ///< null = base solves directly

    void solve_batch(std::span<const double> b, std::span<double> x, std::size_t count,
                     linalg::SchurScratch& scratch) const {
      if (update) {
        update->solve_batch(b, x, count, scratch);
      } else {
        base->solve_batch(b, x, count, scratch);
      }
    }
  };

  [[nodiscard]] RungResult run_rung(SolverKind kind, std::span<const double> rhs,
                                    SolveScratch& ws) const;
  [[nodiscard]] const linalg::BandedCholesky* banded(std::string* error) const;
  [[nodiscard]] const linalg::SparseCholesky* sparse(std::string* error) const;
  [[nodiscard]] const Hierarchical* macromodel(std::string* error) const;
  [[nodiscard]] SolveOutcome solve_one(std::span<const double> sinks, bool want_ir,
                                       SolveScratch& ws) const;
  [[nodiscard]] SolveOutcome solve_batch(const SolveRequest& request, SolveScratch& ws) const;

  SolverKind kind_;
  IrSolverOptions options_;
  double vdd_;
  linalg::Csr g_;
  std::vector<double> supply_rhs_;  ///< sum of g*VDD per node
  std::vector<int> block_of_;       ///< per-die partition (macromodel rung)
  // The factors are immutable once built; call_once makes the lazy builds
  // safe under concurrent solves (the factors themselves are applied through
  // const, buffer-free-or-caller-buffered paths).
  mutable std::once_flag ic_once_;
  mutable std::unique_ptr<linalg::IncompleteCholesky> ic_;
  mutable std::once_flag banded_once_;
  mutable std::unique_ptr<linalg::BandedCholesky> banded_;
  mutable std::string banded_error_;  ///< sticky factorization failure
  mutable std::once_flag sparse_once_;
  mutable std::unique_ptr<linalg::SparseCholesky> sparse_;
  mutable std::string sparse_error_;  ///< sticky decline reason (fill guard, not SPD)
  mutable std::once_flag hier_once_;
  mutable std::unique_ptr<Hierarchical> hier_;
  mutable std::string hier_error_;  ///< sticky decline reason (guards, rank cap)
  mutable std::atomic<std::size_t> last_iterations_{0};
  mutable std::atomic<SolverKind> last_kind_used_{SolverKind::kPcgIc};
  mutable SolveTelemetry telemetry_;
};

}  // namespace pdn3d::irdrop
