#include "irdrop/lut.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "exec/thread_pool.hpp"
#include "irdrop/eval_context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checkpoint.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace pdn3d::irdrop {

IrLut IrLut::build(const IrAnalyzer& analyzer, const floorplan::DramFloorplanSpec& spec,
                   int max_per_die, double io_demand, int threads,
                   util::SweepCheckpoint* checkpoint) {
  if (threads < 0) throw std::invalid_argument("IrLut::build: threads must be >= 0");
  PDN3D_TRACE_SPAN_NAMED(span, "lut/build");
  const util::ScopedTimer build_timer("lut.build_seconds");
  static auto& m_states = obs::counter("lut.states_evaluated");

  const int dies = analyzer.model().dram_die_count();
  const int radix = max_per_die + 1;
  std::size_t total = 1;
  for (int d = 0; d < dies; ++d) total *= static_cast<std::size_t>(radix);
  m_states.add(total);
  span.attribute("states", static_cast<std::uint64_t>(total));

  // Each table entry is a pure function of its key (mixed-radix decode ->
  // worst-case state -> verified solve), so the sweep parallelizes with no
  // cross-entry state; an unsolvable state throws exactly as it would
  // serially (the pool surfaces the lowest-key failure).
  //
  // Warm starts engage only on the fallback path: a sparse-direct analyzer
  // whose factorization was declined re-solves with CG, and consecutive
  // entries within a chunk are similar enough that seeding from the previous
  // solution saves most iterations. On the default paths (exact direct
  // solves, or plain PCG analyzers) warm start stays off, which is what keeps
  // the table bitwise identical at any thread count.
  // Warm starts make an entry depend on its chunk predecessors, which would
  // break the checkpoint contract (each entry a pure function of its key), so
  // they stay off while checkpointing.
  const bool warm_start = checkpoint == nullptr &&
                          analyzer.solver().kind() == SolverKind::kSparseDirect &&
                          !analyzer.solver().sparse_factor_available();
  std::vector<double> table(total, 0.0);
  exec::ThreadPool pool(static_cast<std::size_t>(threads));
  EvalContext root(analyzer);
  pool.parallel_chunks(total, [&](std::size_t, std::size_t begin, std::size_t end) {
    EvalContext ctx = root.fork();
    ctx.set_warm_start(warm_start);
    std::vector<int> counts(static_cast<std::size_t>(dies), 0);
    for (std::size_t key = begin; key < end; ++key) {
      if (checkpoint != nullptr) {
        if (const util::CheckpointEntry* entry = checkpoint->find(key)) {
          if (entry->ok) {
            table[key] = entry->value;
            continue;
          }
          // A recorded failure is recomputed: the build aborts on unsolvable
          // states, so a fail entry only exists if semantics change later.
        }
      }
      std::size_t k = key;
      for (int d = 0; d < dies; ++d) {
        counts[static_cast<std::size_t>(d)] =
            static_cast<int>(k % static_cast<std::size_t>(radix));
        k /= static_cast<std::size_t>(radix);
      }
      int active_dies = 0;
      for (int c : counts) {
        if (c > 0) ++active_dies;
      }
      const double act =
          active_dies > 0 ? std::min(1.0, io_demand / static_cast<double>(active_dies)) : 0.0;
      const auto state = power::make_state_from_counts(counts, spec, act);
      table[key] = ctx.analyze(state).dram_max_mv;
      if (checkpoint != nullptr) checkpoint->record(key, {true, table[key], {}});
    }
  });
  if (checkpoint != nullptr) checkpoint->flush();
  return IrLut(dies, max_per_die, std::move(table));
}

void IrLut::save(std::ostream& os) const {
  os << "pdn3d-lut v1 dies=" << die_count_ << " max=" << max_per_die_ << "\n";
  const int radix = max_per_die_ + 1;
  for (std::size_t key = 0; key < table_.size(); ++key) {
    std::size_t k = key;
    for (int d = 0; d < die_count_; ++d) {
      if (d > 0) os << '-';
      os << static_cast<int>(k % static_cast<std::size_t>(radix));
      k /= static_cast<std::size_t>(radix);
    }
    os << ' ' << table_[key] << "\n";
  }
}

IrLut IrLut::load(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) throw std::runtime_error("IrLut::load: empty input");
  int dies = 0;
  int max_per_die = 0;
  if (std::sscanf(header.c_str(), "pdn3d-lut v1 dies=%d max=%d", &dies, &max_per_die) != 2 ||
      dies <= 0 || max_per_die <= 0) {
    throw std::runtime_error("IrLut::load: bad header '" + header + "'");
  }
  const int radix = max_per_die + 1;
  std::size_t total = 1;
  for (int d = 0; d < dies; ++d) total *= static_cast<std::size_t>(radix);

  std::vector<double> table(total, -1.0);
  IrLut lut(dies, max_per_die, std::move(table));

  std::string line;
  std::size_t filled = 0;
  int line_no = 1;
  std::vector<int> counts(static_cast<std::size_t>(dies), 0);
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view text = util::trim(line);
    if (text.empty() || text.front() == '#') continue;
    std::istringstream ss{std::string(text)};
    std::string state;
    double value = 0.0;
    if (!(ss >> state >> value)) {
      throw std::runtime_error("IrLut::load: line " + std::to_string(line_no) + " malformed");
    }
    const auto parts = util::split(state, '-');
    if (static_cast<int>(parts.size()) != dies) {
      throw std::runtime_error("IrLut::load: line " + std::to_string(line_no) +
                               " wrong die count");
    }
    for (int d = 0; d < dies; ++d) {
      counts[static_cast<std::size_t>(d)] = std::stoi(parts[static_cast<std::size_t>(d)]);
    }
    const std::size_t key = lut.index(counts);
    if (lut.table_[key] < 0.0) ++filled;
    lut.table_[key] = value;
  }
  if (filled != total) {
    throw std::runtime_error("IrLut::load: table incomplete (" + std::to_string(filled) + "/" +
                             std::to_string(total) + " states)");
  }
  return lut;
}

std::size_t IrLut::index(const std::vector<int>& counts) const {
  if (static_cast<int>(counts.size()) != die_count_) {
    throw std::invalid_argument("IrLut: counts size mismatch");
  }
  const int radix = max_per_die_ + 1;
  std::size_t key = 0;
  std::size_t mult = 1;
  for (int d = 0; d < die_count_; ++d) {
    const int c = counts[static_cast<std::size_t>(d)];
    if (c < 0 || c > max_per_die_) throw std::out_of_range("IrLut: count out of range");
    key += static_cast<std::size_t>(c) * mult;
    mult *= static_cast<std::size_t>(radix);
  }
  return key;
}

double IrLut::max_ir_mv(const std::vector<int>& counts) const { return table_[index(counts)]; }

double IrLut::worst_case_mv() const {
  return table_.empty() ? 0.0 : *std::max_element(table_.begin(), table_.end());
}

std::vector<int> IrLut::worst_case_state() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < table_.size(); ++i) {
    if (table_[i] > table_[best]) best = i;
  }
  std::vector<int> counts(static_cast<std::size_t>(die_count_), 0);
  const int radix = max_per_die_ + 1;
  std::size_t k = best;
  for (int d = 0; d < die_count_; ++d) {
    counts[static_cast<std::size_t>(d)] = static_cast<int>(k % static_cast<std::size_t>(radix));
    k /= static_cast<std::size_t>(radix);
  }
  return counts;
}

}  // namespace pdn3d::irdrop
