#pragma once

/// @file analysis.hpp
/// @brief Memory-state -> IR-drop analysis on a built stack.
///
/// Binds a StackModel to its floorplans and power specs, precomputes the
/// block-to-mesh-node rasterization, and evaluates the IR drop of arbitrary
/// memory states. This is the engine every experiment in the paper runs on.

#include <optional>
#include <span>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "irdrop/solver.hpp"
#include "pdn/stack_model.hpp"
#include "power/memory_state.hpp"
#include "power/power_model.hpp"

namespace pdn3d::irdrop {

/// Per-die IR statistics, in the paper's millivolt units.
struct DieIrStats {
  double max_mv = 0.0;
  double avg_mv = 0.0;
};

struct IrResult {
  std::vector<DieIrStats> dram_dies;  ///< bottom die first
  double dram_max_mv = 0.0;           ///< paper's "max IR drop" headline number
  double logic_max_mv = 0.0;          ///< host logic self-noise (0 off-chip)
  double total_power_mw = 0.0;        ///< stack total (DRAM dies only)
  double active_die_power_mw = 0.0;   ///< max per-die power among active dies

  // Numerical-health telemetry of the solve behind this result.
  SolverKind solver_kind = SolverKind::kPcgIc;  ///< rung that produced it
  std::size_t solver_iterations = 0;            ///< CG iterations (0 direct)
  std::size_t solver_escalations = 0;           ///< rungs that failed first
};

/// Power configuration for the analyzer.
struct PowerBinding {
  power::DiePowerSpec dram;
  power::LogicPowerSpec logic;
  double dram_scale = 1.0;  ///< benchmark power scaling
  bool logic_active = true; ///< inject logic power (ignored off-chip)
};

class IrAnalyzer {
 public:
  /// @param model built stack (kept by reference; must outlive the analyzer).
  /// @param dram_fp the (identical) DRAM die floorplan.
  /// @param logic_fp host floorplan; required when the model has a logic die.
  /// @param options solver tuning, including the shared MacromodelContext
  /// that lets the hierarchical rung reuse die blocks across design points.
  IrAnalyzer(const pdn::StackModel& model, const floorplan::Floorplan& dram_fp,
             const floorplan::Floorplan& logic_fp, PowerBinding power,
             SolverKind solver = SolverKind::kPcgIc, IrSolverOptions options = {});

  /// Full IR analysis of one memory state.
  [[nodiscard]] IrResult analyze(const power::MemoryState& state) const;

  /// analyze() with caller-owned work buffers -- the EvalContext hot path.
  /// @p scratch / @p sinks_buffer may be null (allocates locally). Thread-safe
  /// when each concurrent caller passes its own buffers.
  [[nodiscard]] IrResult analyze(const power::MemoryState& state, SolveScratch* scratch,
                                 std::vector<double>* sinks_buffer) const;

  /// Analyze many states through one multi-RHS solve (SolveRequest
  /// batch_count), amortizing the factorization across the group -- the
  /// service's request-coalescing hot path. Results come back in input order
  /// and every IrResult's voltages/statistics are bitwise identical to a
  /// stand-alone analyze() of that state (the solver's per-slice contract;
  /// the stats extraction is literally the same code). Per-result solver
  /// telemetry carries the batch aggregate (iterations/escalations sum,
  /// kind_used is the last slice's rung) -- rendered output never prints it
  /// for evaluate, so the byte-parity contract is unaffected. All-or-nothing:
  /// any slice exhausting the ladder throws core::NumericalError.
  [[nodiscard]] std::vector<IrResult> analyze_batch(
      std::span<const power::MemoryState> states) const;

  /// The per-node sink-current vector for a state (exposed for validation).
  [[nodiscard]] std::vector<double> injection(const power::MemoryState& state) const;

  /// injection() into a caller-owned buffer (resized and zeroed here).
  void injection_into(const power::MemoryState& state, std::vector<double>& sinks) const;

  /// Per-node IR drop (volts) over the whole stack for one state.
  [[nodiscard]] std::vector<double> ir_map(const power::MemoryState& state) const;

  /// Per-node voltages (volts) for one state -- input to crowding analysis.
  [[nodiscard]] std::vector<double> node_voltages(const power::MemoryState& state) const;

  /// Per-block IR statistics on one DRAM die -- the hotspot report that maps
  /// mesh results back onto the floorplan.
  struct BlockIr {
    const floorplan::Block* block = nullptr;
    double max_mv = 0.0;
    double avg_mv = 0.0;
  };
  /// Sorted hottest-first. @p die in [0, dram_die_count).
  [[nodiscard]] std::vector<BlockIr> block_report(const power::MemoryState& state, int die) const;

  [[nodiscard]] const IrSolver& solver() const { return solver_; }
  [[nodiscard]] const pdn::StackModel& model() const { return model_; }

 private:
  /// Shared per-state stats extraction: @p ir is one node_count()-long IR
  /// slice; @p outcome supplies the solver telemetry. Used by analyze() and
  /// analyze_batch() so their IrResults cannot diverge.
  [[nodiscard]] IrResult extract_stats(const power::MemoryState& state,
                                       std::span<const double> ir,
                                       const SolveOutcome& outcome) const;

  const pdn::StackModel& model_;
  const floorplan::Floorplan& dram_fp_;
  const floorplan::Floorplan& logic_fp_;
  PowerBinding power_;
  IrSolver solver_;

  /// Block index -> device-layer node ids, per DRAM die.
  std::vector<std::vector<std::vector<std::size_t>>> dram_block_nodes_;
  std::vector<std::vector<std::size_t>> logic_block_nodes_;
};

}  // namespace pdn3d::irdrop
