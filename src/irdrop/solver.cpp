#include "irdrop/solver.hpp"

#include <stdexcept>

#include "linalg/coo.hpp"
#include "linalg/dense.hpp"
#include "linalg/reorder.hpp"

namespace pdn3d::irdrop {

IrSolver::IrSolver(const pdn::StackModel& model, SolverKind kind)
    : kind_(kind), vdd_(model.vdd()) {
  const std::size_t n = model.node_count();
  if (n == 0) throw std::invalid_argument("IrSolver: empty model");
  if (model.taps().empty()) {
    throw std::invalid_argument("IrSolver: no supply taps -- the system would be singular");
  }

  linalg::CooBuilder builder(n);
  for (const auto& r : model.resistors()) {
    builder.stamp_conductance(r.a, r.b, 1.0 / r.ohms);
  }
  supply_rhs_.assign(n, 0.0);
  for (const auto& t : model.taps()) {
    const double g = 1.0 / t.ohms;
    builder.stamp_to_ground(t.node, g);
    supply_rhs_[t.node] += g * vdd_;
  }
  g_ = builder.compress();

  if (kind_ == SolverKind::kPcgIc) {
    ic_ = std::make_unique<linalg::IncompleteCholesky>(g_);
  } else if (kind_ == SolverKind::kBandedDirect) {
    banded_ = std::make_unique<linalg::BandedCholesky>(g_, linalg::rcm_ordering(g_));
  }
}

std::vector<double> IrSolver::solve(std::span<const double> sinks) const {
  const std::size_t n = g_.dimension();
  if (sinks.size() != n) throw std::invalid_argument("IrSolver::solve: sink vector size mismatch");

  std::vector<double> rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = supply_rhs_[i] - sinks[i];

  if (kind_ == SolverKind::kBandedDirect) {
    last_iterations_ = 0;
    return banded_->solve(rhs);
  }

  if (kind_ == SolverKind::kDense) {
    last_iterations_ = 0;
    linalg::DenseMatrix a(n, n);
    const auto rp = g_.row_ptr();
    const auto ci = g_.col_idx();
    const auto vals = g_.values();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) a(r, ci[k]) = vals[k];
    }
    return linalg::solve_cholesky(std::move(a), rhs);
  }

  linalg::CgOptions opts;
  opts.preconditioner = kind_ == SolverKind::kPcgIc ? linalg::Preconditioner::kIncompleteCholesky
                                                    : linalg::Preconditioner::kJacobi;
  // Reuse the cached IC factor by inlining the CG loop? solve_cg refactors it
  // internally; for the IC path we bypass solve_cg and run PCG here with the
  // cached preconditioner to avoid re-factorizing per state.
  if (kind_ == SolverKind::kPcgJacobi) {
    auto result = linalg::solve_cg(g_, rhs, opts);
    if (!result.converged) throw std::runtime_error("IrSolver: CG did not converge");
    last_iterations_ = result.iterations;
    return std::move(result.x);
  }

  // IC-PCG with the cached factorization.
  std::vector<double> x(n, 0.0);
  std::vector<double> r(rhs);
  std::vector<double> z(n, 0.0);
  std::vector<double> p(n, 0.0);
  std::vector<double> ap(n, 0.0);
  const double bnorm = linalg::norm2(rhs);
  if (bnorm == 0.0) return x;
  const double target = 1e-10 * bnorm;

  ic_->apply(r, z);
  p = z;
  double rz = linalg::dot(r, z);
  const std::size_t max_it = 20000;
  bool converged = false;
  for (std::size_t it = 0; it < max_it; ++it) {
    g_.multiply(p, ap);
    const double pap = linalg::dot(p, ap);
    if (pap <= 0.0) break;
    const double alpha = rz / pap;
    linalg::axpy(alpha, p, x);
    linalg::axpy(-alpha, ap, r);
    last_iterations_ = it + 1;
    if (linalg::norm2(r) <= target) {
      converged = true;
      break;
    }
    ic_->apply(r, z);
    const double rz_new = linalg::dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  if (!converged) throw std::runtime_error("IrSolver: IC-PCG did not converge");
  return x;
}

std::vector<double> IrSolver::solve_ir(std::span<const double> sinks) const {
  std::vector<double> v = solve(sinks);
  for (double& x : v) x = vdd_ - x;
  return v;
}

}  // namespace pdn3d::irdrop
