#include "irdrop/solver.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "exec/cancel.hpp"
#include "faults/faults.hpp"
#include "linalg/coo.hpp"
#include "linalg/dense.hpp"
#include "linalg/reorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pdn/mesh_validator.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace pdn3d::irdrop {

namespace {

/// Process-wide mirrors of the per-instance SolveTelemetry counters, named
/// `solver.<noun_verb>[.<rung>]` per the metric naming convention.
obs::Counter& rung_attempt_counter(SolverKind kind) {
  static std::array<obs::Counter*, kSolverKindCount> counters = [] {
    std::array<obs::Counter*, kSolverKindCount> out{};
    for (std::size_t k = 0; k < kSolverKindCount; ++k) {
      out[k] = &obs::counter(std::string("solver.rung_attempts.") +
                             to_string(static_cast<SolverKind>(k)));
    }
    return out;
  }();
  return *counters[static_cast<std::size_t>(kind)];
}

obs::Counter& rung_failure_counter(SolverKind kind) {
  static std::array<obs::Counter*, kSolverKindCount> counters = [] {
    std::array<obs::Counter*, kSolverKindCount> out{};
    for (std::size_t k = 0; k < kSolverKindCount; ++k) {
      out[k] = &obs::counter(std::string("solver.rung_failures.") +
                             to_string(static_cast<SolverKind>(k)));
    }
    return out;
  }();
  return *counters[static_cast<std::size_t>(kind)];
}

}  // namespace

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kMacromodel: return "macromodel";
    case SolverKind::kSparseDirect: return "sparse-direct";
    case SolverKind::kPcgIc: return "ic-pcg";
    case SolverKind::kPcgJacobi: return "jacobi-pcg";
    case SolverKind::kBandedDirect: return "banded-direct";
    case SolverKind::kDense: return "dense-cholesky";
  }
  return "?";
}

SolverKind select_solver_kind(std::size_t expected_solves) {
  return expected_solves >= kSparseDirectMinSolves ? SolverKind::kSparseDirect
                                                   : SolverKind::kPcgIc;
}

SolverKind select_solver_kind(std::size_t expected_solves, ReuseHint hint,
                              std::size_t expected_design_points) {
  if (hint == ReuseHint::kSharedDies && expected_design_points >= kMacromodelMinDesignPoints &&
      expected_solves >= 1) {
    return SolverKind::kMacromodel;
  }
  return select_solver_kind(expected_solves);
}

IrSolver::IrSolver(const pdn::StackModel& model, SolverKind kind, IrSolverOptions options)
    : kind_(kind), options_(options), vdd_(model.vdd()) {
  if (options_.validate) {
    core::ValidationReport report = pdn::validate_stack_model(model);
    if (!report.ok()) throw core::ValidationError(std::move(report));
  } else {
    // Minimal invariants even when the caller opted out of full validation:
    // without them the matrix assembly below is undefined.
    if (model.node_count() == 0) throw std::invalid_argument("IrSolver: empty model");
    if (model.taps().empty()) {
      throw std::invalid_argument("IrSolver: no supply taps -- the system would be singular");
    }
  }

  const std::size_t n = model.node_count();
  linalg::CooBuilder builder(n);
  for (const auto& r : model.resistors()) {
    builder.stamp_conductance(r.a, r.b, 1.0 / r.ohms);
  }
  supply_rhs_.assign(n, 0.0);
  for (const auto& t : model.taps()) {
    const double g = 1.0 / t.ohms;
    builder.stamp_to_ground(t.node, g);
    supply_rhs_[t.node] += g * vdd_;
  }
  g_ = builder.compress();

  // The per-die partition costs O(n); computed unconditionally so the
  // macromodel rung is available whenever the start kind asks for it.
  try {
    block_of_ = stack_partition(model);
  } catch (const std::exception&) {
    block_of_.clear();  // synthetic grid-less meshes: the rung declines
  }

  if (kind_ == SolverKind::kPcgIc) {
    std::call_once(ic_once_, [&] {
      PDN3D_TRACE_SPAN("solver/precond_build");
      const util::ScopedTimer build_timer("solver.precond_build_seconds");
      ic_ = std::make_unique<linalg::IncompleteCholesky>(g_);
    });
  }
  // The direct factorizations (sparse, banded) are built lazily (see
  // sparse() / banded()) so that a starting rung and an escalation into it
  // share one path, and a factorization failure becomes a rung failure
  // instead of a constructor throw.
}

const linalg::BandedCholesky* IrSolver::banded(std::string* error) const {
  // call_once so concurrent solves escalating into this rung race neither on
  // the build nor on the sticky error string.
  std::call_once(banded_once_, [&] {
    try {
      banded_ = std::make_unique<linalg::BandedCholesky>(g_, linalg::rcm_ordering(g_));
    } catch (const std::exception& e) {
      banded_error_ = e.what();
    }
  });
  if (!banded_ && error != nullptr) *error = banded_error_;
  return banded_.get();
}

const linalg::SparseCholesky* IrSolver::sparse(std::string* error) const {
  static auto& m_builds = obs::counter("solver.factor_builds");
  static auto& m_build_failures = obs::counter("solver.factor_build_failures");
  static auto& m_cache_hits = obs::counter("solver.factor_cache_hits");
  static auto& m_fill_ratio = obs::gauge("solver.factor_fill_ratio");
  static auto& m_factor_nnz = obs::gauge("solver.factor_nnz");

  bool built_now = false;
  std::call_once(sparse_once_, [&] {
    built_now = true;
    PDN3D_TRACE_SPAN("solver/factor_build");
    const util::ScopedTimer build_timer("solver.factor_build_seconds");
    try {
      linalg::SparseCholeskyOptions opts;
      opts.max_fill_ratio = options_.max_fill_ratio;
      sparse_ = std::make_unique<linalg::SparseCholesky>(g_, linalg::rcm_ordering(g_), opts);
      m_builds.add(1);
      m_fill_ratio.set(sparse_->fill_ratio());
      m_factor_nnz.set(static_cast<double>(sparse_->factor_nnz()));
    } catch (const std::exception& e) {
      sparse_error_ = e.what();
      m_build_failures.add(1);
    }
  });
  if (sparse_ && !built_now) m_cache_hits.add(1);
  if (!sparse_ && error != nullptr) *error = sparse_error_;
  return sparse_.get();
}

bool IrSolver::sparse_factor_available() const { return sparse(nullptr) != nullptr; }

const IrSolver::Hierarchical* IrSolver::macromodel(std::string* error) const {
  static auto& m_builds = obs::counter("solver.macromodel.builds");
  static auto& m_reuses = obs::counter("solver.macromodel.reuses");
  static auto& m_woodbury = obs::counter("solver.macromodel.woodbury_updates");

  std::call_once(hier_once_, [&] {
    PDN3D_TRACE_SPAN("solver/macromodel_build");
    const util::ScopedTimer build_timer("solver.macromodel_build_seconds");
    try {
      if (block_of_.empty()) {
        throw std::runtime_error("stack partition unavailable");
      }
      auto hier = std::make_unique<Hierarchical>();
      MacromodelContext* ctx = options_.macromodel.get();
      linalg::SchurOptions opts = ctx != nullptr ? ctx->options() : linalg::SchurOptions{};
      opts.max_fill_ratio = options_.max_fill_ratio;

      // Cheapest first: an identical mesh reuses a context base outright; a
      // small design delta rides a Woodbury overlay on it (die factors AND
      // the reduced factorization reused). Anything else builds fresh -- but
      // through the context's block cache, so untouched dies still rebuild
      // nothing -- and becomes the new base for its neighbors.
      if (ctx != nullptr) {
        if (auto base = ctx->base_for(g_.dimension())) {
          const auto touched = linalg::WoodburyUpdate::touched_nodes(base->matrix(), g_);
          if (touched.empty()) {
            hier->base = std::move(base);
            m_reuses.add(1);
          } else if (touched.size() <= options_.woodbury_max_rank) {
            try {
              hier->update = std::make_unique<linalg::WoodburyUpdate>(base, g_,
                                                                      options_.woodbury_max_rank);
              hier->base = std::move(base);
              m_woodbury.add(1);
              m_reuses.add(1);
            } catch (const std::exception&) {
              // Rank-deficient capture or a guard decline: fresh build below.
            }
          }
        }
      }
      if (hier->base == nullptr) {
        // Deliberately NOT registered as a context base: bases come only from
        // explicit anchor preparation (Platform::prepare_sweep), so which
        // base a sweep point sees never depends on worker arrival order --
        // the cross-thread-count bitwise determinism contract.
        auto built = std::make_shared<const linalg::SchurMacromodel>(
            g_, block_of_, opts, ctx != nullptr ? &ctx->blocks() : nullptr);
        m_builds.add(1);
        m_reuses.add(built->blocks_reused());  // die blocks served from the cache
        hier->base = std::move(built);
      }
      hier_ = std::move(hier);
    } catch (const std::exception& e) {
      hier_error_ = e.what();
    }
  });
  if (!hier_ && error != nullptr) *error = hier_error_;
  return hier_.get();
}

bool IrSolver::macromodel_available() const { return macromodel(nullptr) != nullptr; }

std::shared_ptr<const linalg::SchurMacromodel> IrSolver::macromodel_base() const {
  const Hierarchical* hier = macromodel(nullptr);
  return hier != nullptr ? hier->base : nullptr;
}

IrSolver::RungResult IrSolver::run_rung(SolverKind kind, std::span<const double> rhs,
                                        SolveScratch& ws) const {
  RungResult out;
  const std::size_t n = g_.dimension();
  try {
    switch (kind) {
      case SolverKind::kMacromodel: {
        std::string error;
        const Hierarchical* hier = macromodel(&error);
        if (hier == nullptr) {
          out.detail = "macromodel declined: " + error;
          return out;
        }
        out.x.assign(n, 0.0);
        hier->solve_batch(rhs, out.x, 1, ws.schur);
        out.produced = true;
        return out;
      }
      case SolverKind::kSparseDirect: {
        std::string error;
        const linalg::SparseCholesky* fac = sparse(&error);
        if (fac == nullptr) {
          out.detail = "sparse factorization declined: " + error;
          return out;
        }
        out.x.assign(n, 0.0);
        fac->solve(rhs, out.x, ws.direct);
        out.produced = true;
        return out;
      }
      case SolverKind::kPcgIc:
      case SolverKind::kPcgJacobi: {
        linalg::CgOptions opts;
        opts.rel_tolerance = options_.cg_rel_tolerance;
        opts.max_iterations = options_.cg_max_iterations;
        if (kind == SolverKind::kPcgIc) {
          opts.preconditioner = linalg::Preconditioner::kIncompleteCholesky;
          // Reuse the factor built at construction; per-state re-solves are
          // the hot path of LUT construction and co-optimization sweeps.
          std::call_once(ic_once_, [&] { ic_ = std::make_unique<linalg::IncompleteCholesky>(g_); });
          opts.cached_ic = ic_.get();
        } else {
          opts.preconditioner = linalg::Preconditioner::kJacobi;
        }
        if (ws.warm_start && ws.warm.size() == n) opts.x0 = ws.warm;
        auto result = linalg::solve_cg(g_, rhs, opts, &ws.cg);
        out.iterations = result.iterations;
        if (!result.converged) {
          out.detail = std::string(linalg::to_string(result.failure)) +
                       (result.detail.empty() ? "" : ": " + result.detail);
          return out;
        }
        out.x = std::move(result.x);
        out.produced = true;
        return out;
      }
      case SolverKind::kBandedDirect: {
        std::string error;
        const linalg::BandedCholesky* fac = banded(&error);
        if (fac == nullptr) {
          out.detail = "banded factorization failed: " + error;
          return out;
        }
        out.x = fac->solve(rhs);
        out.produced = true;
        return out;
      }
      case SolverKind::kDense: {
        if (kind_ != SolverKind::kDense && n > options_.dense_escalation_limit) {
          out.detail = "matrix dimension " + std::to_string(n) +
                       " exceeds the dense escalation limit " +
                       std::to_string(options_.dense_escalation_limit);
          return out;
        }
        linalg::DenseMatrix a(n, n);
        const auto rp = g_.row_ptr();
        const auto ci = g_.col_idx();
        const auto vals = g_.values();
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) a(r, ci[k]) = vals[k];
        }
        out.x = linalg::solve_cholesky(std::move(a), rhs);
        out.produced = true;
        return out;
      }
    }
  } catch (const std::exception& e) {
    out.produced = false;
    out.x.clear();
    out.detail = e.what();
  }
  return out;
}

SolveOutcome IrSolver::solve_one(std::span<const double> sinks, bool want_ir,
                                 SolveScratch& ws) const {
  const std::size_t n = g_.dimension();

  PDN3D_TRACE_SPAN_NAMED(span, "solver/solve");
  static auto& m_solves = obs::counter("solver.solves");
  static auto& m_failures = obs::counter("solver.failures");
  static auto& m_escalations = obs::counter("ladder.escalations");
  static auto& m_iters_hist =
      obs::histogram("solver.iterations_per_solve", obs::exponential_buckets(1.0, 2.0, 16));
  static auto& m_rung_used = obs::gauge("solver.rung_used");

  SolveOutcome outcome;

  std::vector<double>& rhs = ws.rhs;
  rhs.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = supply_rhs_[i] - sinks[i];
  const double bnorm = linalg::norm2(rhs);

  std::ostringstream trail;  // per-rung failure reasons for the final status
  const std::size_t first = static_cast<std::size_t>(kind_);
  const std::size_t last =
      options_.escalate ? kSolverKindCount - 1 : first;

  for (std::size_t k = first; k <= last; ++k) {
    // Cooperative cancellation (service watchdog): stop climbing the ladder
    // and report kCancelled instead of escalating into ever-pricier rungs.
    if (exec::cancellation_requested()) {
      ++telemetry_.failures;
      m_failures.add(1);
      outcome.status = core::Status::cancelled(
          trail.tellp() > 0 ? "solve cancelled [" + trail.str() + "]" : "solve cancelled");
      return outcome;
    }
    const SolverKind kind = static_cast<SolverKind>(k);
    ++telemetry_.rung_attempts[k];
    rung_attempt_counter(kind).add(1);
    RungResult rung = run_rung(kind, rhs, ws);

    std::string reject;
    if (!rung.produced) {
      reject = rung.detail.empty() ? "no solution produced" : rung.detail;
    } else {
      // Verify the true residual before trusting any rung; a factorization
      // of a near-singular system can "succeed" and still return garbage.
      std::vector<double>& ax = ws.ax;
      ax.assign(n, 0.0);
      g_.multiply(rung.x, ax);
      double res = 0.0;
      bool finite = true;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = rhs[i] - ax[i];
        res += d * d;
        if (!std::isfinite(rung.x[i])) finite = false;
      }
      res = std::sqrt(res);
      const double rel = bnorm > 0.0 ? res / bnorm : res;
      if (!finite || !std::isfinite(rel)) {
        reject = "solution contains non-finite entries";
      } else if (rel > options_.verify_rel_tol) {
        std::ostringstream os;
        os << "residual check failed: ||b-Gx||/||b|| = " << rel << " > "
           << options_.verify_rel_tol;
        reject = os.str();
      } else {
        // Verified-correct: accept this rung.
        outcome.x = std::move(rung.x);
        if (ws.warm_start) ws.warm = outcome.x;  // voltages, pre-IR-conversion
        if (want_ir) {
          for (double& v : outcome.x) v = vdd_ - v;
        }
        outcome.kind_used = kind;
        outcome.iterations = rung.iterations;
        outcome.rel_residual = rel;
        last_iterations_.store(rung.iterations, std::memory_order_relaxed);
        last_kind_used_.store(kind, std::memory_order_relaxed);
        ++telemetry_.solves;
        m_solves.add(1);
        m_iters_hist.observe(static_cast<double>(rung.iterations));
        m_rung_used.set(static_cast<double>(k));
        span.attribute("rung", to_string(kind));
        span.attribute("iterations", static_cast<std::uint64_t>(rung.iterations));
        if (outcome.escalations > 0) {
          util::log_warn("IrSolver: ", to_string(kind_), " failed, recovered by ",
                         to_string(kind), " after ", outcome.escalations, " escalation(s)");
        }
        return outcome;
      }
    }

    ++telemetry_.rung_failures[k];
    rung_failure_counter(kind).add(1);
    if (kind == SolverKind::kMacromodel) {
      static auto& m_fallbacks = obs::counter("solver.macromodel.fallbacks");
      m_fallbacks.add(1);
    }
    if (trail.tellp() > 0) trail << "; ";
    trail << to_string(kind) << ": " << reject;
    if (k < last) {
      ++outcome.escalations;
      ++telemetry_.escalations;
      m_escalations.add(1);
    }
  }

  ++telemetry_.failures;
  m_failures.add(1);
  outcome.status = core::Status::numerical_failure(
      "all solver rungs failed [" + trail.str() + "]");
  return outcome;
}

SolveOutcome IrSolver::solve_batch(const SolveRequest& request, SolveScratch& ws) const {
  const std::size_t n = g_.dimension();
  const std::size_t count = request.batch_count;

  PDN3D_TRACE_SPAN_NAMED(span, "solver/solve_batch");
  span.attribute("batch", static_cast<std::uint64_t>(count));
  static auto& m_solves = obs::counter("solver.solves");
  static auto& m_iters_hist =
      obs::histogram("solver.iterations_per_solve", obs::exponential_buckets(1.0, 2.0, 16));
  static auto& m_rung_used = obs::gauge("solver.rung_used");

  SolveOutcome out;
  out.x.assign(n * count, 0.0);
  std::vector<char> done(count, 0);

  // Fast path: one batched solve covers every right-hand side -- through the
  // hierarchical macromodel when it is the start kind, otherwise the cached
  // sparse-direct factor -- then each slice is residual-verified exactly as a
  // scalar solve would be. Slices the verification rejects (and everything,
  // when the engine was declined) fall through to the scalar escalation
  // ladder below.
  const bool macro_path = kind_ == SolverKind::kMacromodel;
  if (macro_path || kind_ == SolverKind::kSparseDirect) {
    const Hierarchical* hier = macro_path ? macromodel(nullptr) : nullptr;
    const linalg::SparseCholesky* fac = macro_path ? nullptr : sparse(nullptr);
    if (hier != nullptr || fac != nullptr) {
      const SolverKind fast_kind =
          macro_path ? SolverKind::kMacromodel : SolverKind::kSparseDirect;
      std::vector<double>& rhs = ws.batch_rhs;
      rhs.assign(n * count, 0.0);
      for (std::size_t r = 0; r < count; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          rhs[r * n + i] = supply_rhs_[i] - request.sinks[r * n + i];
        }
      }
      ws.batch_x.assign(n * count, 0.0);
      if (hier != nullptr) {
        hier->solve_batch(rhs, ws.batch_x, count, ws.schur);
      } else {
        fac->solve_batch(rhs, ws.batch_x, count, ws.direct);
      }

      for (std::size_t r = 0; r < count; ++r) {
        const std::span<const double> brhs(rhs.data() + r * n, n);
        const std::span<const double> bx(ws.batch_x.data() + r * n, n);
        std::vector<double>& ax = ws.ax;
        ax.assign(n, 0.0);
        g_.multiply(bx, ax);
        double res = 0.0;
        bool finite = true;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = brhs[i] - ax[i];
          res += d * d;
          if (!std::isfinite(bx[i])) finite = false;
        }
        res = std::sqrt(res);
        const double bnorm = linalg::norm2(brhs);
        const double rel = bnorm > 0.0 ? res / bnorm : res;
        if (!finite || !std::isfinite(rel) || rel > options_.verify_rel_tol) continue;

        ++telemetry_.rung_attempts[static_cast<std::size_t>(fast_kind)];
        rung_attempt_counter(fast_kind).add(1);
        for (std::size_t i = 0; i < n; ++i) {
          out.x[r * n + i] = request.want_ir ? vdd_ - bx[i] : bx[i];
        }
        out.kind_used = fast_kind;
        out.rel_residual = std::max(out.rel_residual, rel);
        last_iterations_.store(0, std::memory_order_relaxed);
        last_kind_used_.store(fast_kind, std::memory_order_relaxed);
        ++telemetry_.solves;
        m_solves.add(1);
        m_iters_hist.observe(0.0);
        m_rung_used.set(static_cast<double>(static_cast<std::size_t>(fast_kind)));
        done[r] = 1;
      }
    }
  }

  for (std::size_t r = 0; r < count; ++r) {
    if (done[r]) continue;
    const std::span<const double> sinks(request.sinks.data() + r * n, n);
    SolveOutcome one = solve_one(sinks, request.want_ir, ws);
    if (!one.ok()) {
      // All-or-nothing: a partially-solved batch must not look like success.
      out.x.clear();
      out.status = core::Status(one.status.code(),
                                "batch slice " + std::to_string(r) + ": " + one.status.message());
      out.escalations += one.escalations;
      return out;
    }
    std::copy(one.x.begin(), one.x.end(), out.x.begin() + static_cast<std::ptrdiff_t>(r * n));
    out.kind_used = one.kind_used;
    out.iterations += one.iterations;
    out.rel_residual = std::max(out.rel_residual, one.rel_residual);
    out.escalations += one.escalations;
  }
  return out;
}

SolveOutcome IrSolver::solve(const SolveRequest& request, SolveScratch* scratch) const {
  const std::size_t n = g_.dimension();
  if (request.batch_count == 0) {
    throw std::invalid_argument("IrSolver::solve: batch_count must be >= 1");
  }
  if (request.sinks.size() != n * request.batch_count) {
    throw std::invalid_argument("IrSolver::solve: sink vector size mismatch");
  }

  PDN3D_FAULT_ALLOC("irdrop.solve.alloc");

  SolveScratch local;
  SolveScratch& ws = scratch != nullptr ? *scratch : local;

  // Pre-solve injection health: a NaN load current poisons every inner
  // product, so catch it here with the offending node instead of letting CG
  // spin.
  static auto& m_failures = obs::counter("solver.failures");
  for (std::size_t i = 0; i < request.sinks.size(); ++i) {
    if (!std::isfinite(request.sinks[i])) {
      SolveOutcome outcome;
      outcome.status = core::Status::input_error(
          "non-finite sink current at node " + std::to_string(i % n) +
          (request.batch_count > 1 ? " (batch slice " + std::to_string(i / n) + ")" : ""));
      ++telemetry_.failures;
      m_failures.add(1);
      return outcome;
    }
  }

  if (request.batch_count == 1) return solve_one(request.sinks, request.want_ir, ws);
  return solve_batch(request, ws);
}

}  // namespace pdn3d::irdrop
