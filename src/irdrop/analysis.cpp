#include "irdrop/analysis.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace pdn3d::irdrop {

namespace {

/// Block rect (die-local mm) -> global frame using the grid's origin.
floorplan::Rect to_global(const floorplan::Rect& r, const pdn::LayerGrid& g) {
  return {r.x0 + g.x0, r.y0 + g.y0, r.x1 + g.x0, r.y1 + g.y0};
}

}  // namespace

IrAnalyzer::IrAnalyzer(const pdn::StackModel& model, const floorplan::Floorplan& dram_fp,
                       const floorplan::Floorplan& logic_fp, PowerBinding power, SolverKind solver,
                       IrSolverOptions options)
    : model_(model), dram_fp_(dram_fp), logic_fp_(logic_fp), power_(power),
      solver_(model, solver, std::move(options)) {
  // Rasterize every block of every die onto its device layer once.
  dram_block_nodes_.resize(static_cast<std::size_t>(model_.dram_die_count()));
  for (int d = 0; d < model_.dram_die_count(); ++d) {
    const pdn::LayerGrid& g = model_.device_grid(d);
    auto& per_block = dram_block_nodes_[static_cast<std::size_t>(d)];
    per_block.reserve(dram_fp_.blocks().size());
    for (const auto& b : dram_fp_.blocks()) {
      per_block.push_back(g.nodes_in(to_global(b.rect, g)));
    }
  }
  if (model_.has_logic()) {
    const pdn::LayerGrid& g = model_.device_grid(pdn::kLogicDie);
    logic_block_nodes_.reserve(logic_fp_.blocks().size());
    for (const auto& b : logic_fp_.blocks()) {
      logic_block_nodes_.push_back(g.nodes_in(to_global(b.rect, g)));
    }
  }
}

std::vector<double> IrAnalyzer::injection(const power::MemoryState& state) const {
  std::vector<double> sinks;
  injection_into(state, sinks);
  return sinks;
}

void IrAnalyzer::injection_into(const power::MemoryState& state,
                                std::vector<double>& sinks) const {
  if (state.die_count() != model_.dram_die_count()) {
    throw std::invalid_argument("IrAnalyzer: memory state die count mismatch");
  }
  sinks.assign(model_.node_count(), 0.0);
  const double vdd = model_.vdd();

  const auto add_block_power = [&](const std::vector<std::size_t>& nodes, double watts) {
    if (nodes.empty() || watts <= 0.0) return;
    const double amps_per_node = watts / vdd / static_cast<double>(nodes.size());
    for (std::size_t n : nodes) sinks[n] += amps_per_node;
  };

  for (int d = 0; d < model_.dram_die_count(); ++d) {
    const auto blocks = power::dram_die_power(dram_fp_, state.dies[static_cast<std::size_t>(d)],
                                              state.io_activity, power_.dram, power_.dram_scale);
    const auto& per_block = dram_block_nodes_[static_cast<std::size_t>(d)];
    for (const auto& bp : blocks) {
      // Find the block's index within the floorplan (blocks are stored in
      // insertion order and BlockPower points into the same vector).
      const std::size_t idx = static_cast<std::size_t>(bp.block - dram_fp_.blocks().data());
      add_block_power(per_block[idx], bp.power_w);
    }
  }

  if (model_.has_logic() && power_.logic_active) {
    const auto blocks = power::logic_die_power(logic_fp_, power_.logic);
    for (const auto& bp : blocks) {
      const std::size_t idx = static_cast<std::size_t>(bp.block - logic_fp_.blocks().data());
      add_block_power(logic_block_nodes_[idx], bp.power_w);
    }
  }
}

std::vector<double> IrAnalyzer::ir_map(const power::MemoryState& state) const {
  const std::vector<double> sinks = injection(state);
  SolveOutcome outcome = solver_.solve({.sinks = sinks, .want_ir = true});
  if (!outcome.ok()) throw core::NumericalError(std::move(outcome.status));
  return std::move(outcome.x);
}

std::vector<double> IrAnalyzer::node_voltages(const power::MemoryState& state) const {
  const std::vector<double> sinks = injection(state);
  SolveOutcome outcome = solver_.solve({.sinks = sinks});
  if (!outcome.ok()) throw core::NumericalError(std::move(outcome.status));
  return std::move(outcome.x);
}

std::vector<IrAnalyzer::BlockIr> IrAnalyzer::block_report(const power::MemoryState& state,
                                                          int die) const {
  if (die < 0 || die >= model_.dram_die_count()) {
    throw std::out_of_range("IrAnalyzer::block_report: die out of range");
  }
  const std::vector<double> ir = ir_map(state);
  const auto& per_block = dram_block_nodes_[static_cast<std::size_t>(die)];

  std::vector<BlockIr> out;
  out.reserve(per_block.size());
  for (std::size_t b = 0; b < per_block.size(); ++b) {
    BlockIr entry;
    entry.block = &dram_fp_.blocks()[b];
    double sum = 0.0;
    for (const std::size_t n : per_block[b]) {
      entry.max_mv = std::max(entry.max_mv, util::to_mV(ir[n]));
      sum += util::to_mV(ir[n]);
    }
    if (!per_block[b].empty()) entry.avg_mv = sum / static_cast<double>(per_block[b].size());
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const BlockIr& a, const BlockIr& b) { return a.max_mv > b.max_mv; });
  return out;
}

IrResult IrAnalyzer::analyze(const power::MemoryState& state) const {
  return analyze(state, nullptr, nullptr);
}

IrResult IrAnalyzer::analyze(const power::MemoryState& state, SolveScratch* scratch,
                             std::vector<double>* sinks_buffer) const {
  PDN3D_TRACE_SPAN("irdrop/analyze");
  static auto& m_states = obs::counter("analysis.states_analyzed");
  m_states.add(1);

  std::vector<double> local_sinks;
  std::vector<double>& sinks = sinks_buffer != nullptr ? *sinks_buffer : local_sinks;
  injection_into(state, sinks);
  SolveOutcome outcome = solver_.solve({.sinks = sinks, .want_ir = true}, scratch);
  if (!outcome.ok()) throw core::NumericalError(std::move(outcome.status));
  return extract_stats(state, outcome.x, outcome);
}

std::vector<IrResult> IrAnalyzer::analyze_batch(
    std::span<const power::MemoryState> states) const {
  PDN3D_TRACE_SPAN("irdrop/analyze_batch");
  static auto& m_states = obs::counter("analysis.states_analyzed");
  m_states.add(states.size());
  if (states.empty()) return {};

  // Pack the per-state injections back to back (RHS-major) for one
  // batch_count solve; the solver guarantees each solution slice is bitwise
  // identical to a stand-alone solve of that sink vector.
  const std::size_t n = model_.node_count();
  std::vector<double> sinks(n * states.size());
  std::vector<double> one;
  for (std::size_t i = 0; i < states.size(); ++i) {
    injection_into(states[i], one);
    std::copy(one.begin(), one.end(), sinks.begin() + static_cast<std::ptrdiff_t>(i * n));
  }

  SolveOutcome outcome =
      solver_.solve({.sinks = sinks, .want_ir = true, .batch_count = states.size()});
  if (!outcome.ok()) throw core::NumericalError(std::move(outcome.status));

  std::vector<IrResult> out;
  out.reserve(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    out.push_back(
        extract_stats(states[i], std::span<const double>(outcome.x).subspan(i * n, n), outcome));
  }
  return out;
}

IrResult IrAnalyzer::extract_stats(const power::MemoryState& state, std::span<const double> ir,
                                   const SolveOutcome& outcome) const {
  IrResult out;
  // Telemetry comes from the outcome of *this* request -- the deprecated
  // last_* accessors would report some concurrent solve's rung under a
  // threaded sweep. (For a batch, the outcome's scalars are the batch
  // aggregate; see analyze_batch.)
  out.solver_kind = outcome.kind_used;
  out.solver_iterations = outcome.iterations;
  out.solver_escalations = outcome.escalations;
  out.dram_dies.resize(static_cast<std::size_t>(model_.dram_die_count()));
  for (int d = 0; d < model_.dram_die_count(); ++d) {
    const pdn::LayerGrid& g = model_.device_grid(d);
    double max_v = 0.0;
    double sum = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) {
      const double v = ir[g.base + k];
      max_v = std::max(max_v, v);
      sum += v;
    }
    auto& stats = out.dram_dies[static_cast<std::size_t>(d)];
    stats.max_mv = util::to_mV(max_v);
    stats.avg_mv = util::to_mV(sum / static_cast<double>(g.size()));
    out.dram_max_mv = std::max(out.dram_max_mv, stats.max_mv);
  }

  if (model_.has_logic()) {
    const pdn::LayerGrid& g = model_.device_grid(pdn::kLogicDie);
    double max_v = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) max_v = std::max(max_v, ir[g.base + k]);
    out.logic_max_mv = util::to_mV(max_v);
  }

  for (int d = 0; d < model_.dram_die_count(); ++d) {
    const auto& die = state.dies[static_cast<std::size_t>(d)];
    const double die_mw = (die.active()
                               ? power_.dram.active_die_mw(state.io_activity, die.count())
                               : power_.dram.idle_mw) *
                          power_.dram_scale;
    out.total_power_mw += die_mw;
    if (die.active()) out.active_die_power_mw = std::max(out.active_die_power_mw, die_mw);
  }
  return out;
}

}  // namespace pdn3d::irdrop
