#pragma once

/// @file em.hpp
/// @brief Post-solve electromigration analysis: branch current densities,
/// limit checks, and Black's-equation MTTF per element kind.
///
/// The solver produces node voltages only; this pass generalizes
/// crowding.cpp's element-current extraction with per-layer/per-TSV
/// cross-section geometry so every resistor's current becomes a current
/// density (MA/cm^2). In-plane segments get their cross-section from the
/// usage/thickness the stack builder recorded on each LayerGrid; vertical
/// elements (TSVs, C4s, via arrays, F2F fields, RDL pads) get theirs from
/// tech::EmTech. Densities are checked against configurable wire/TSV/via
/// limits and summarized as per-kind MTTF via Black's equation.

#include <optional>
#include <span>
#include <vector>

#include "irdrop/crowding.hpp"
#include "pdn/stack_model.hpp"
#include "tech/technology.hpp"

namespace pdn3d::irdrop {

/// Request-level overrides for the tech-file EM model (the api `em-*`
/// options). Unset fields fall back to tech::EmTech defaults.
struct EmOptions {
  std::optional<double> wire_limit_ma_cm2;
  std::optional<double> tsv_limit_ma_cm2;
  std::optional<double> temperature_c;
};

/// Current-density statistics for one ElementKind, with its limit check.
struct EmKindStats {
  pdn::ElementKind kind = pdn::ElementKind::kMesh;
  CrowdingStats current;       ///< amps over elements of the kind
  double max_j_ma_cm2 = 0.0;   ///< worst single element
  double avg_j_ma_cm2 = 0.0;   ///< mean over elements of the kind
  double limit_ma_cm2 = 0.0;   ///< the limit this kind was checked against
  std::size_t violations = 0;  ///< elements with J > limit
  double mttf_hours = 0.0;     ///< Black's MTTF at max J (0 when no current)

  [[nodiscard]] double utilization() const {
    return limit_ma_cm2 > 0.0 ? max_j_ma_cm2 / limit_ma_cm2 : 0.0;
  }
};

/// Result of one EM pass over a solved stack.
struct EmReport {
  std::vector<EmKindStats> kinds;  ///< kinds present in the model, enum order
  std::size_t total_violations = 0;
  double worst_utilization = 0.0;  ///< max over kinds of max_j / limit
  double min_mttf_hours = 0.0;     ///< min over kinds with current (0 = n/a)
  double temperature_c = 0.0;      ///< temperature the MTTFs used

  [[nodiscard]] bool clean() const { return total_violations == 0; }
  [[nodiscard]] const EmKindStats* find(pdn::ElementKind k) const;
};

/// Black's equation MTTF = A * J^-n * exp(Ea / (kB * T)), in hours, with J in
/// MA/cm^2 and T in Celsius. Returns 0 for J <= 0 ("no stress" sentinel).
[[nodiscard]] double black_mttf_hours(const tech::EmTech& em, double j_ma_cm2,
                                      double temperature_c);

/// The EM pass. Throws std::invalid_argument when the voltage vector does not
/// match the model or when any element's geometry resolves to a non-positive
/// cross-section (e.g. a zero-thickness or zero-diameter tech entry) -- a
/// typed error instead of silent NaN/Inf densities.
[[nodiscard]] EmReport em_check(const pdn::StackModel& model, const tech::Technology& tech,
                                std::span<const double> voltages, const EmOptions& options = {});

}  // namespace pdn3d::irdrop
