#include "irdrop/eval_context.hpp"

namespace pdn3d::irdrop {

IrResult EvalContext::analyze(const power::MemoryState& state) {
  IrResult result = analyzer_->analyze(state, &scratch_, &sinks_);
  ++stats_.analyses;
  ++stats_.solves;
  stats_.escalations += result.solver_escalations;
  return result;
}

SolveOutcome EvalContext::solve(const SolveRequest& request) {
  SolveOutcome outcome = analyzer_->solver().solve(request, &scratch_);
  ++stats_.solves;
  stats_.escalations += outcome.escalations;
  return outcome;
}

void EvalContext::set_warm_start(bool on) {
  scratch_.warm_start = on;
  if (!on) scratch_.warm.clear();
}

}  // namespace pdn3d::irdrop
