#include "irdrop/eval_context.hpp"

namespace pdn3d::irdrop {

IrResult EvalContext::analyze(const power::MemoryState& state) {
  IrResult result = analyzer_->analyze(state, &scratch_, &sinks_);
  ++stats_.analyses;
  ++stats_.solves;
  stats_.escalations += result.solver_escalations;
  return result;
}

SolveOutcome EvalContext::solve(const SolveRequest& request) {
  SolveOutcome outcome = analyzer_->solver().solve(request, &scratch_);
  ++stats_.solves;
  stats_.escalations += outcome.escalations;
  return outcome;
}

}  // namespace pdn3d::irdrop
