#include "irdrop/crowding.hpp"

#include <cmath>
#include <stdexcept>

namespace pdn3d::irdrop {

std::vector<double> element_currents(const pdn::StackModel& model,
                                     std::span<const double> voltages) {
  if (voltages.size() != model.node_count()) {
    throw std::invalid_argument("element_currents: voltage vector size mismatch");
  }
  std::vector<double> out;
  out.reserve(model.resistors().size());
  for (const auto& r : model.resistors()) {
    out.push_back(std::abs(voltages[r.a] - voltages[r.b]) / r.ohms);
  }
  return out;
}

CrowdingStats current_stats(const pdn::StackModel& model, std::span<const double> voltages,
                            pdn::ElementKind kind) {
  if (voltages.size() != model.node_count()) {
    throw std::invalid_argument("current_stats: voltage vector size mismatch");
  }
  CrowdingStats stats;
  for (const auto& r : model.resistors()) {
    if (r.kind != kind) continue;
    const double amps = std::abs(voltages[r.a] - voltages[r.b]) / r.ohms;
    ++stats.count;
    stats.total_amps += amps;
    if (amps > stats.max_amps) stats.max_amps = amps;
  }
  if (stats.count > 0) stats.avg_amps = stats.total_amps / static_cast<double>(stats.count);
  return stats;
}

}  // namespace pdn3d::irdrop
