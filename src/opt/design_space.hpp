#pragma once

/// @file design_space.hpp
/// @brief Per-benchmark design space (Table 8 input ranges + validity rules).

#include <functional>
#include <vector>

#include "pdn/pdn_config.hpp"

namespace pdn3d::opt {

/// One combination of the discrete options (continuous vars are swept
/// separately through the regression model).
struct DiscreteChoice {
  pdn::TsvLocation tsv_location = pdn::TsvLocation::kEdge;
  bool dedicated = false;
  pdn::BondingStyle bonding = pdn::BondingStyle::kF2B;
  pdn::RdlMode rdl = pdn::RdlMode::kNone;
  bool wire_bonding = false;
};

struct DesignSpace {
  // Continuous ranges (Table 8): usages as fractions, TSV count as integer.
  double m2_min = 0.10, m2_max = 0.20;
  double m3_min = 0.10, m3_max = 0.40;
  int tc_min = 15, tc_max = 480;
  bool tc_fixed = false;  ///< Wide I/O: TC pinned to 160 by JEDEC specs
  int tc_fixed_value = 160;

  // Discrete option menus.
  std::vector<pdn::TsvLocation> tsv_locations = {pdn::TsvLocation::kCenter,
                                                 pdn::TsvLocation::kEdge};
  std::vector<bool> dedicated_options = {false, true};
  std::vector<pdn::BondingStyle> bonding_options = {pdn::BondingStyle::kF2B,
                                                    pdn::BondingStyle::kF2F};
  std::vector<pdn::RdlMode> rdl_options = {pdn::RdlMode::kNone, pdn::RdlMode::kBottomOnly};
  std::vector<bool> wirebond_options = {false, true};

  pdn::Mounting mounting = pdn::Mounting::kOffChip;

  /// Sample points for regression fitting (filled with defaults if empty).
  std::vector<double> m2_samples;
  std::vector<double> m3_samples;
  std::vector<int> tc_samples;

  /// Extra validity rule (e.g. Wide I/O: edge TSVs require an RDL). May be
  /// empty.
  std::function<bool(const DiscreteChoice&)> valid;

  /// Effective TC bounds (collapses to the fixed value when tc_fixed).
  [[nodiscard]] int effective_tc_min() const { return tc_fixed ? tc_fixed_value : tc_min; }
  [[nodiscard]] int effective_tc_max() const { return tc_fixed ? tc_fixed_value : tc_max; }
};

/// All valid discrete choices of a space.
std::vector<DiscreteChoice> enumerate_choices(const DesignSpace& space);

/// Materialize a full PdnConfig from a choice + continuous variables.
pdn::PdnConfig make_config(const DesignSpace& space, const DiscreteChoice& choice, double m2,
                           double m3, int tc);

/// Default sample grids when the space does not override them.
std::vector<double> default_m2_samples(const DesignSpace& space);
std::vector<double> default_m3_samples(const DesignSpace& space);
std::vector<int> default_tc_samples(const DesignSpace& space);

}  // namespace pdn3d::opt
