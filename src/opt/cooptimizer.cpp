#include "opt/cooptimizer.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "core/status.hpp"
#include "cost/cost_model.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checkpoint.hpp"
#include "util/log.hpp"

namespace pdn3d::opt {

CoOptimizer::CoOptimizer(DesignSpace space, std::unique_ptr<Evaluator> evaluate, int threads)
    : space_(std::move(space)), evaluate_(std::move(evaluate)), threads_(threads) {
  if (!evaluate_) throw std::invalid_argument("CoOptimizer: evaluator required");
  if (threads_ < 0) throw std::invalid_argument("CoOptimizer: threads must be >= 0");
}

std::vector<CoOptimizer::PointResult> CoOptimizer::evaluate_batch(
    const std::vector<pdn::PdnConfig>& configs) {
  PDN3D_TRACE_SPAN("cooptimize/evaluate_batch");
  static auto& m_evaluated = obs::counter("cooptimizer.points_evaluated");
  static auto& m_skipped = obs::counter("cooptimizer.points_skipped");

  std::vector<PointResult> results(configs.size());
  // Checkpoint indices are the global running measurement count: the sweep
  // enumerates points deterministically, so index base+i names the same
  // config in the original and the resumed run.
  const std::uint64_t base = static_cast<std::uint64_t>(total_samples_);
  // Announce the batch before any fork: reuse-aware evaluators prepare
  // shared solver state (hierarchical-tier anchors) off the deterministic
  // first config, so what the workers see is independent of scheduling.
  if (!configs.empty()) evaluate_->hint_sweep(configs.front(), configs.size());
  exec::ThreadPool pool(static_cast<std::size_t>(threads_));
  pool.parallel_chunks(configs.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
    const std::unique_ptr<Evaluator> ev = evaluate_->fork();
    for (std::size_t i = begin; i < end; ++i) {
      PDN3D_TRACE_SPAN("cooptimize/solve_point");
      PointResult& r = results[i];
      if (checkpoint_ != nullptr) {
        if (const util::CheckpointEntry* entry = checkpoint_->find(base + i)) {
          r.ok = entry->ok;
          r.ir_mv = entry->value;
          r.reason = entry->message;
          continue;
        }
      }
      try {
        r.ir_mv = ev->measure(configs[i]);
        r.ok = true;
      } catch (const core::NumericalError& e) {
        if (e.status().code() == core::StatusCode::kCancelled) throw;
        r.reason = e.status().to_string();
      } catch (const core::ValidationError& e) {
        r.reason = e.report().to_status().to_string();
      }
      if (checkpoint_ != nullptr) checkpoint_->record(base + i, {r.ok, r.ir_mv, r.reason});
    }
  });

  // Bookkeeping after the region completes, in index order: skipped_ and the
  // counters come out identical at any thread count.
  total_samples_ += configs.size();
  m_evaluated.add(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (results[i].ok) continue;
    skipped_.push_back({configs[i], results[i].reason});
    m_skipped.add(1);
    util::log_warn("co-optimizer: skipping unsolvable point ", configs[i].summary(), " -- ",
                   results[i].reason);
  }
  return results;
}

bool CoOptimizer::sample_point(const pdn::PdnConfig& config, double* ir_mv) {
  PDN3D_TRACE_SPAN("cooptimize/solve_point");
  static auto& m_evaluated = obs::counter("cooptimizer.points_evaluated");
  static auto& m_skipped = obs::counter("cooptimizer.points_skipped");
  const std::uint64_t index = static_cast<std::uint64_t>(total_samples_);
  ++total_samples_;
  m_evaluated.add(1);
  if (checkpoint_ != nullptr) {
    if (const util::CheckpointEntry* entry = checkpoint_->find(index)) {
      if (entry->ok) {
        *ir_mv = entry->value;
        return true;
      }
      skipped_.push_back({config, entry->message});
      m_skipped.add(1);
      return false;
    }
  }
  try {
    *ir_mv = evaluate_->measure(config);
    if (checkpoint_ != nullptr) checkpoint_->record(index, {true, *ir_mv, {}});
    return true;
  } catch (const core::NumericalError& e) {
    if (e.status().code() == core::StatusCode::kCancelled) throw;
    skipped_.push_back({config, e.status().to_string()});
  } catch (const core::ValidationError& e) {
    skipped_.push_back({config, e.report().to_status().to_string()});
  }
  if (checkpoint_ != nullptr) checkpoint_->record(index, {false, 0.0, skipped_.back().reason});
  m_skipped.add(1);
  util::log_warn("co-optimizer: skipping unsolvable point ", config.summary(), " -- ",
                 skipped_.back().reason);
  return false;
}

std::string CoOptimizer::check_constraint(const pdn::PdnConfig& config) {
  if (!constraint_) return {};
  PDN3D_TRACE_SPAN("cooptimize/check_constraint");
  try {
    return constraint_(config);
  } catch (const core::NumericalError& e) {
    if (e.status().code() == core::StatusCode::kCancelled) throw;
    return e.status().to_string();
  } catch (const core::ValidationError& e) {
    return e.report().to_status().to_string();
  }
}

const std::vector<FittedChoice>& CoOptimizer::fit_models() {
  if (fitted_) return fits_;

  PDN3D_TRACE_SPAN("cooptimize/fit_models");
  const auto choices = enumerate_choices(space_);
  const auto m2s = default_m2_samples(space_);
  const auto m3s = default_m3_samples(space_);
  const auto tcs = default_tc_samples(space_);

  // The sampling sweep is the expensive phase (one R-Mesh build + solve per
  // point); each discrete choice's grid goes through evaluate_batch so the
  // points run across the pool while samples/fits keep their serial order.
  fits_.clear();
  fits_.reserve(choices.size());
  for (const auto& choice : choices) {
    std::vector<pdn::PdnConfig> configs;
    std::vector<std::array<double, 2>> usages;  ///< (m2, m3) per config
    configs.reserve(m2s.size() * m3s.size() * tcs.size());
    usages.reserve(configs.capacity());
    for (const double m2 : m2s) {
      for (const double m3 : m3s) {
        for (const int tc : tcs) {
          configs.push_back(make_config(space_, choice, m2, m3, tc));
          usages.push_back({m2, m3});
        }
      }
    }
    std::vector<PointResult> results = evaluate_batch(configs);

    std::vector<fit::Sample> samples;
    samples.reserve(configs.size());
    const auto collect = [&] {
      for (std::size_t i = 0; i < configs.size(); ++i) {
        if (!results[i].ok) continue;
        fit::Sample s;
        s.vars = {usages[i][0], usages[i][1], static_cast<double>(configs[i].tsv_count)};
        s.ir_mv = results[i].ir_mv;
        samples.push_back(s);
      }
    };
    collect();
    if (samples.size() < fit::ir_feature_count()) {
      // TC-fixed spaces can produce fewer samples than features (and skipped
      // unsolvable points shrink the set further); densify the usage axes.
      const double m2_mid = (space_.m2_min + space_.m2_max) * 0.5;
      const double m3_lo = space_.m3_min + 0.25 * (space_.m3_max - space_.m3_min);
      const double m3_hi = space_.m3_min + 0.75 * (space_.m3_max - space_.m3_min);
      configs.clear();
      usages.clear();
      for (const double m2 : {m2_mid}) {
        for (const double m3 : {m3_lo, m3_hi}) {
          for (const int tc : tcs) {
            configs.push_back(make_config(space_, choice, m2, m3, tc));
            usages.push_back({m2, m3});
          }
        }
      }
      results = evaluate_batch(configs);
      collect();
    }
    if (samples.size() < fit::ir_feature_count()) {
      // Not enough solvable samples to constrain the regression: skip the
      // whole discrete choice rather than fit an underdetermined model.
      util::log_warn("co-optimizer: dropping choice TL=", to_string(choice.tsv_location),
                     " BD=", to_string(choice.bonding),
                     " -- only ", samples.size(), " solvable sample(s)");
      continue;
    }
    FittedChoice fc;
    fc.choice = choice;
    fc.sample_count = samples.size();
    fc.model = fit::IrModel::fit(samples);
    util::log_info("fitted choice TL=", to_string(choice.tsv_location),
                   " TD=", choice.dedicated ? "Y" : "N", " BD=", to_string(choice.bonding),
                   " RL=", to_string(choice.rdl), " WB=", choice.wire_bonding ? "Y" : "N",
                   " rmse=", fc.model.rmse(), " r2=", fc.model.r_squared());
    fits_.push_back(std::move(fc));
  }
  if (fits_.empty()) {
    throw core::NumericalError(core::Status::numerical_failure(
        "co-optimizer: no discrete choice had enough solvable sample points (" +
        std::to_string(skipped_.size()) + " skipped)"));
  }
  fitted_ = true;
  if (checkpoint_ != nullptr) checkpoint_->flush();
  obs::gauge("cooptimizer.fit_worst_rmse_mv").set(worst_rmse());
  obs::gauge("cooptimizer.fit_worst_r_squared").set(worst_r_squared());
  obs::gauge("cooptimizer.fitted_choices").set(static_cast<double>(fits_.size()));
  return fits_;
}

Optimum CoOptimizer::optimize(double alpha) {
  if (alpha < 0.0 || alpha > 1.0) throw std::invalid_argument("CoOptimizer: alpha outside [0,1]");
  fit_models();

  PDN3D_TRACE_SPAN("cooptimize/optimize");
  static auto& m_banned = obs::counter("cooptimizer.points_banned");
  static auto& m_constrained = obs::counter("cooptimizer.points_constrained");

  // Winners whose R-Mesh re-measurement failed; excluded from later rounds so
  // the sweep returns the best point among the remaining candidates.
  std::set<std::string> banned;
  constexpr int kMaxRemeasureRetries = 8;

  for (int round = 0; round <= kMaxRemeasureRetries; ++round) {
    Optimum best;
    best.objective = std::numeric_limits<double>::max();

    // Fine grid over the continuous box, evaluated on the cheap fitted models.
    constexpr int kM2Steps = 11;
    constexpr int kM3Steps = 31;
    for (const auto& fc : fits_) {
      const int tc_lo = space_.effective_tc_min();
      const int tc_hi = space_.effective_tc_max();
      const int tc_step = std::max(1, (tc_hi - tc_lo) / 156);
      for (int i = 0; i < kM2Steps; ++i) {
        const double m2 =
            space_.m2_min + (space_.m2_max - space_.m2_min) * i / double(kM2Steps - 1);
        for (int j = 0; j < kM3Steps; ++j) {
          const double m3 =
              space_.m3_min + (space_.m3_max - space_.m3_min) * j / double(kM3Steps - 1);
          for (int tc = tc_lo; tc <= tc_hi; tc += tc_step) {
            const double ir = fc.model.predict({m2, m3, static_cast<double>(tc)});
            if (ir <= 0.0) continue;  // extrapolation artifact; physical IR > 0
            const auto cfg = make_config(space_, fc.choice, m2, m3, tc);
            if (!banned.empty() && banned.count(cfg.summary()) > 0) continue;
            const double c = cost::total_cost(cfg);
            const double obj = cost::ir_cost(ir, c, alpha);
            if (obj < best.objective) {
              best.objective = obj;
              best.config = cfg;
              best.predicted_ir_mv = ir;
              best.cost = c;
            }
          }
        }
      }
    }

    if (best.objective == std::numeric_limits<double>::max()) {
      throw std::runtime_error("CoOptimizer: empty design space");
    }
    if (sample_point(best.config, &best.measured_ir_mv)) {
      const std::string rejection = check_constraint(best.config);
      if (rejection.empty()) {
        if (checkpoint_ != nullptr) checkpoint_->flush();
        return best;
      }
      skipped_.push_back({best.config, rejection, SkippedPoint::Kind::kConstraint});
      m_constrained.add(1);
      util::log_warn("co-optimizer: constraint rejects optimum ", best.config.summary(), " -- ",
                     rejection);
    }
    banned.insert(best.config.summary());
    m_banned.add(1);
  }
  throw core::NumericalError(core::Status::numerical_failure(
      "co-optimizer: every candidate optimum failed R-Mesh re-measurement or a hard constraint"));
}

double CoOptimizer::worst_rmse() const {
  double w = 0.0;
  for (const auto& fc : fits_) w = std::max(w, fc.model.rmse());
  return w;
}

double CoOptimizer::worst_r_squared() const {
  double w = 1.0;
  for (const auto& fc : fits_) w = std::min(w, fc.model.r_squared());
  return w;
}

}  // namespace pdn3d::opt
