#pragma once

/// @file cooptimizer.hpp
/// @brief Cross-domain co-optimization (Section 6).
///
/// The paper's flow: sample the continuous variables per discrete option
/// combination, run the R-Mesh on the samples, fit a regression model
/// (replacing 4637 hours of brute force with ~10), then globally optimize
/// IR-cost = IR^alpha * Cost^(1-alpha). We reproduce exactly that:
/// exhaustive enumeration of discrete choices x a fine grid sweep on the
/// fitted models, re-measuring the winner with the R-Mesh (Table 9 reports
/// both the model's and the R-Mesh's IR drop for the optimum).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fit/regression.hpp"
#include "opt/design_space.hpp"
#include "pdn/pdn_config.hpp"

namespace pdn3d::util {
class SweepCheckpoint;
}

namespace pdn3d::opt {

/// Measures the true IR drop of design configurations with the R-Mesh
/// engine. The co-optimizer parallelizes its sample sweep by fork()ing one
/// evaluator per worker chunk: measure() may keep per-instance scratch
/// without any locking, as long as fork()ed siblings are independent (shared
/// data immutable or internally synchronized -- see irdrop::EvalContext for
/// the canonical layering).
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// True IR drop (mV) of @p config. May throw core::NumericalError or
  /// core::ValidationError to signal an unsolvable/degenerate design point;
  /// the optimizer records the point (see skipped_points()) and continues
  /// instead of aborting the sweep.
  [[nodiscard]] virtual double measure(const pdn::PdnConfig& config) = 0;

  /// Sweep announcement, called once (on the root evaluator, before any
  /// fork) per batch of sibling design points: @p representative is the
  /// batch's first config in deterministic enumeration order and
  /// @p expected_points its size. Reuse-aware evaluators (PlatformEvaluator)
  /// use it to prepare shared solver state -- e.g. the hierarchical tier's
  /// Woodbury anchor -- so that the whole batch amortizes one build. The
  /// default is a no-op; measurements must return the same values whether or
  /// not the hint was delivered (it is a performance channel, not a
  /// correctness one).
  virtual void hint_sweep(const pdn::PdnConfig& representative, std::size_t expected_points) {
    (void)representative;
    (void)expected_points;
  }

  /// A sibling safe to run concurrently with this one. Forks inherit any
  /// hint_sweep() state delivered to their parent.
  [[nodiscard]] virtual std::unique_ptr<Evaluator> fork() const = 0;
};

/// Adapter over a free callback. fork() copies the callback, so it must be
/// self-contained or internally synchronized to benefit from threads (a copy
/// of a lambda shares whatever it captured by reference).
class FunctionEvaluator final : public Evaluator {
 public:
  explicit FunctionEvaluator(std::function<double(const pdn::PdnConfig&)> fn)
      : fn_(std::move(fn)) {}
  [[nodiscard]] double measure(const pdn::PdnConfig& config) override { return fn_(config); }
  [[nodiscard]] std::unique_ptr<Evaluator> fork() const override {
    return std::make_unique<FunctionEvaluator>(fn_);
  }

 private:
  std::function<double(const pdn::PdnConfig&)> fn_;
};

/// A design point the sweep could not accept, with its structured reason.
struct SkippedPoint {
  /// Why the point was excluded: the R-Mesh could not solve it, or a hard
  /// constraint (e.g. an EM current-density limit) rejected its measurement.
  enum class Kind { kSolveFailure, kConstraint };

  pdn::PdnConfig config;
  std::string reason;
  Kind kind = Kind::kSolveFailure;
};

struct FittedChoice {
  DiscreteChoice choice;
  fit::IrModel model;
  std::size_t sample_count = 0;
};

struct Optimum {
  pdn::PdnConfig config;
  double predicted_ir_mv = 0.0;  ///< regression model (paper's "Matlab" column)
  double measured_ir_mv = 0.0;   ///< R-Mesh re-measurement
  double cost = 0.0;
  double objective = 0.0;  ///< IR-cost at the requested alpha
};

class CoOptimizer {
 public:
  /// @param threads workers for the sampling sweep; 0 =
  /// exec::default_thread_count(). Sampling results, skipped-point order,
  /// fits, and the optimum are identical at any thread count.
  CoOptimizer(DesignSpace space, std::unique_ptr<Evaluator> evaluate, int threads = 0);

  /// Phase 1: run the R-Mesh on the sample grid of every discrete choice and
  /// fit the per-choice regression models. Returns the fits (also cached
  /// internally). Idempotent.
  const std::vector<FittedChoice>& fit_models();

  /// Phase 2: minimize IR-cost at @p alpha over the whole space using the
  /// fitted models, then re-measure the winner. fit_models() is called
  /// on demand.
  Optimum optimize(double alpha);

  /// Worst regression quality across choices (paper: RMSE < 0.135,
  /// R^2 > 0.999).
  [[nodiscard]] double worst_rmse() const;
  [[nodiscard]] double worst_r_squared() const;

  [[nodiscard]] std::size_t total_samples() const { return total_samples_; }
  [[nodiscard]] const DesignSpace& space() const { return space_; }

  /// Design points the R-Mesh could not solve during sampling or winner
  /// re-measurement, with their failure reasons. The sweep completes and
  /// optimizes over the remaining candidates.
  [[nodiscard]] const std::vector<SkippedPoint>& skipped_points() const { return skipped_; }

  /// A hard constraint on candidate optima: returns an empty string when
  /// @p config is acceptable, a human-readable reason otherwise. Checked
  /// after the winner's successful R-Mesh re-measurement; a rejected winner
  /// is recorded as a SkippedPoint (Kind::kConstraint), banned, and the
  /// search continues with the next-best candidate -- so optimize() never
  /// returns a constraint-violating optimum. May throw core::NumericalError /
  /// core::ValidationError, treated like a re-measurement failure.
  using Constraint = std::function<std::string(const pdn::PdnConfig&)>;

  /// Attach (or clear, with nullptr) the hard constraint above.
  void set_constraint(Constraint constraint) { constraint_ = std::move(constraint); }

  /// Attach a crash-safe checkpoint (non-owning; must outlive the optimizer).
  /// Measurements are keyed by their global running index: the sweep order is
  /// deterministic, so a resumed fit/optimize replays recorded measurements
  /// and recomputes only the missing tail, bitwise identical to an
  /// uninterrupted run. Attach before the first fit_models()/optimize() call.
  void set_checkpoint(util::SweepCheckpoint* checkpoint) { checkpoint_ = checkpoint; }

 private:
  struct PointResult {
    bool ok = false;
    double ir_mv = 0.0;
    std::string reason;  ///< structured failure when !ok
  };

  /// Measure every config across the pool (one fork()ed evaluator per
  /// chunk). Results come back in input order; skipped-point bookkeeping
  /// happens afterwards in index order, so the sweep's observable state is
  /// independent of the thread count.
  std::vector<PointResult> evaluate_batch(const std::vector<pdn::PdnConfig>& configs);

  /// Evaluate one sample serially; records a SkippedPoint and returns false
  /// on a structured solver failure.
  bool sample_point(const pdn::PdnConfig& config, double* ir_mv);

  /// Run the attached constraint on a re-measured winner. Empty = accepted;
  /// a thrown solver/validation error reads as a rejection reason.
  std::string check_constraint(const pdn::PdnConfig& config);

  DesignSpace space_;
  std::unique_ptr<Evaluator> evaluate_;
  int threads_ = 0;
  Constraint constraint_;
  util::SweepCheckpoint* checkpoint_ = nullptr;
  std::vector<FittedChoice> fits_;
  std::vector<SkippedPoint> skipped_;
  std::size_t total_samples_ = 0;
  bool fitted_ = false;
};

}  // namespace pdn3d::opt
