#include "opt/design_space.hpp"

#include <cmath>

namespace pdn3d::opt {

std::vector<DiscreteChoice> enumerate_choices(const DesignSpace& space) {
  std::vector<DiscreteChoice> out;
  for (const auto tl : space.tsv_locations) {
    for (const bool td : space.dedicated_options) {
      for (const auto bd : space.bonding_options) {
        for (const auto rl : space.rdl_options) {
          for (const bool wb : space.wirebond_options) {
            DiscreteChoice c{tl, td, bd, rl, wb};
            if (space.valid && !space.valid(c)) continue;
            out.push_back(c);
          }
        }
      }
    }
  }
  return out;
}

pdn::PdnConfig make_config(const DesignSpace& space, const DiscreteChoice& choice, double m2,
                           double m3, int tc) {
  pdn::PdnConfig cfg;
  cfg.m2_usage = m2;
  cfg.m3_usage = m3;
  cfg.tsv_count = space.tc_fixed ? space.tc_fixed_value : tc;
  cfg.tsv_location = choice.tsv_location;
  // With an RDL the logic-side pattern stays centered (the low-cost choice);
  // without one both sides must match.
  cfg.logic_tsv_location =
      choice.rdl != pdn::RdlMode::kNone ? pdn::TsvLocation::kCenter : choice.tsv_location;
  cfg.dedicated_tsvs = choice.dedicated;
  cfg.bonding = choice.bonding;
  cfg.rdl = choice.rdl;
  cfg.wire_bonding = choice.wire_bonding;
  cfg.mounting = space.mounting;
  return cfg;
}

std::vector<double> default_m2_samples(const DesignSpace& space) {
  if (!space.m2_samples.empty()) return space.m2_samples;
  return {space.m2_min, (space.m2_min + space.m2_max) * 0.5, space.m2_max};
}

std::vector<double> default_m3_samples(const DesignSpace& space) {
  if (!space.m3_samples.empty()) return space.m3_samples;
  return {space.m3_min, (space.m3_min + space.m3_max) * 0.5, space.m3_max};
}

std::vector<int> default_tc_samples(const DesignSpace& space) {
  if (space.tc_fixed) return {space.tc_fixed_value};
  if (!space.tc_samples.empty()) return space.tc_samples;
  // Geometric-ish spread: the IR response flattens at high counts.
  const double lo = space.tc_min;
  const double hi = space.tc_max;
  return {static_cast<int>(lo), static_cast<int>(std::sqrt(lo * hi)),
          static_cast<int>((lo + hi) * 0.35), static_cast<int>(hi)};
}

}  // namespace pdn3d::opt
