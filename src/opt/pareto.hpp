#pragma once

/// @file pareto.hpp
/// @brief IR-drop vs cost Pareto frontier from the co-optimizer.
///
/// Sweeping alpha over [0, 1] and taking each IR-cost optimum traces the
/// frontier of non-dominated designs -- the continuous generalization of the
/// paper's three-point Table 9 summary.

#include <vector>

#include "opt/cooptimizer.hpp"

namespace pdn3d::opt {

struct ParetoPoint {
  double alpha = 0.0;
  Optimum optimum;
};

/// Optimize at @p steps evenly spaced alphas in [0, 1] (inclusive), then
/// filter to the non-dominated set (lower IR and lower cost both win).
/// Points are returned in ascending-cost order.
std::vector<ParetoPoint> pareto_front(CoOptimizer& optimizer, int steps = 11);

/// True if @p a dominates @p b (no worse in both objectives, better in one).
bool dominates(const Optimum& a, const Optimum& b);

}  // namespace pdn3d::opt
