#include "opt/pareto.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdn3d::opt {

bool dominates(const Optimum& a, const Optimum& b) {
  const bool no_worse = a.measured_ir_mv <= b.measured_ir_mv && a.cost <= b.cost;
  const bool better = a.measured_ir_mv < b.measured_ir_mv || a.cost < b.cost;
  return no_worse && better;
}

std::vector<ParetoPoint> pareto_front(CoOptimizer& optimizer, int steps) {
  if (steps < 2) throw std::invalid_argument("pareto_front: need at least 2 steps");

  std::vector<ParetoPoint> points;
  points.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    ParetoPoint p;
    p.alpha = static_cast<double>(i) / static_cast<double>(steps - 1);
    p.optimum = optimizer.optimize(p.alpha);
    points.push_back(std::move(p));
  }

  // Drop dominated points.
  std::vector<ParetoPoint> front;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      if (&other != &candidate && dominates(other.optimum, candidate.optimum)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }

  std::sort(front.begin(), front.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
    if (a.optimum.cost != b.optimum.cost) return a.optimum.cost < b.optimum.cost;
    return a.optimum.measured_ir_mv < b.optimum.measured_ir_mv;
  });
  // Deduplicate identical designs picked at adjacent alphas.
  front.erase(std::unique(front.begin(), front.end(),
                          [](const ParetoPoint& a, const ParetoPoint& b) {
                            return a.optimum.config.summary() == b.optimum.config.summary();
                          }),
              front.end());
  return front;
}

}  // namespace pdn3d::opt
