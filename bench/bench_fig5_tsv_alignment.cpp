// Figure 5: impact of TSV count and C4 alignment on the max IR drop, for the
// on-chip and off-chip stacked DDR3 designs. The paper's findings: more TSVs
// reduce the IR drop but saturate; C4-aligned TSVs beat uniform-pitch TSVs
// (up to 51.5% on-chip); off-chip designs are less alignment-sensitive.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"
#include "irdrop/crowding.hpp"
#include "pdn/stack_builder.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Figure 5", "TSV count and C4-alignment sweep, stacked DDR3, state 0-0-0-2");

  for (const auto kind :
       {core::BenchmarkKind::kStackedDdr3OffChip, core::BenchmarkKind::kStackedDdr3OnChip}) {
    core::Platform p(core::make_benchmark(kind));
    const auto& bench = p.benchmark();
    std::cout << "--- " << bench.name << " ---\n";
    // The alignment study concerns the shared power path; disable dedicated
    // TSVs so the TSVs actually traverse the logic die.
    auto base = bench.baseline;
    base.dedicated_tsvs = false;

    util::Table t({"TSV count", "aligned (mV)", "uniform pitch (mV)", "alignment benefit",
                   "avg C4 distance (mm)", "peak TSV I (mA)", "crowding factor"});
    for (int tc : {15, 33, 60, 120, 240, 480}) {
      auto aligned = base;
      aligned.tsv_count = tc;
      aligned.align_tsvs_to_c4 = true;
      auto uniform = aligned;
      uniform.align_tsvs_to_c4 = false;
      const double va = p.analyze(aligned, "0-0-0-2").dram_max_mv;
      const double vu = p.analyze(uniform, "0-0-0-2").dram_max_mv;

      // TSV current crowding of the aligned design (Section 3.2 metric).
      const auto built = pdn::build_stack(bench.stack, aligned);
      irdrop::PowerBinding power;
      power.dram = bench.dram_power;
      power.logic = bench.logic_power;
      power.dram_scale = bench.power_scale;
      const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                        power);
      const auto state = power::parse_memory_state("0-0-0-2", bench.stack.dram_spec);
      const auto stats = irdrop::current_stats(built.model, analyzer.node_voltages(state),
                                               pdn::ElementKind::kTsv);

      t.add_row({std::to_string(tc), util::fmt_fixed(va, 2), util::fmt_fixed(vu, 2),
                 util::fmt_percent(va / vu - 1.0),
                 util::fmt_fixed(p.build_info(uniform).avg_c4_tsv_distance_mm, 3),
                 util::fmt_fixed(stats.max_amps * 1e3, 1),
                 util::fmt_fixed(stats.crowding_factor(), 1)});
    }
    std::cout << t.render() << "\n";
  }
  std::cout << "paper: alignment reduces IR drop by up to 51.5% on-chip; gains saturate\n"
            << "with TSV count; off-chip designs are less alignment-sensitive.\n\n";
  return 0;
}
