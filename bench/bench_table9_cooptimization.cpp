// Table 9: cross-domain co-optimization -- best design points for all four
// benchmarks at alpha = 0 (lowest cost), 0.3 (balanced), and 1 (lowest IR
// drop), against the industry baseline. For every optimum both the fitted
// regression model's IR drop and the R-Mesh re-measurement are reported
// (the paper's "Matlab" and "R-Mesh" columns).

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"
#include "cost/cost_model.hpp"
#include "util/timer.hpp"

namespace {

struct PaperRow {
  double alpha;
  double ir_mv;
  double cost;
};

struct PaperRef {
  pdn3d::core::BenchmarkKind kind;
  PaperRow rows[3];
  double baseline_ir;
  double baseline_cost;
};

}  // namespace

int main() {
  using namespace pdn3d;
  bench::print_header("Table 9", "Co-optimized best options for all four benchmarks");

  const PaperRef refs[] = {
      {core::BenchmarkKind::kStackedDdr3OffChip,
       {{0.0, 88.73, 0.23}, {0.3, 23.01, 0.37}, {1.0, 9.54, 0.87}},
       30.03, 0.35},
      {core::BenchmarkKind::kStackedDdr3OnChip,
       {{0.0, 117.6, 0.17}, {0.3, 27.09, 0.32}, {1.0, 9.843, 0.92}},
       31.18, 0.35},
      {core::BenchmarkKind::kWideIo,
       {{0.0, 110.2, 0.35}, {0.3, 4.841, 0.73}, {1.0, 4.841, 0.73}},
       13.62, 0.62},
      {core::BenchmarkKind::kHmc,
       {{0.0, 459.7, 0.35}, {0.3, 18.65, 0.76}, {1.0, 13.84, 1.17}},
       47.90, 0.77},
  };

  for (const auto& ref : refs) {
    core::Platform platform(core::make_benchmark(ref.kind));
    const auto& b = platform.benchmark();
    std::cout << "--- " << b.name << " (default state " << b.default_state << ") ---\n";

    util::Timer timer;
    auto opt = platform.make_cooptimizer();
    opt.fit_models();

    util::Table t({"alpha", "M2%", "M3%", "TC", "TL", "TD", "BD", "RL", "WB",
                   "model IR (mV)", "R-Mesh IR (mV)", "cost"});
    for (const auto& row : ref.rows) {
      const auto best = opt.optimize(row.alpha);
      const auto& c = best.config;
      t.add_row({util::fmt_fixed(row.alpha, 1), util::fmt_fixed(c.m2_usage * 100.0, 0),
                 util::fmt_fixed(c.m3_usage * 100.0, 0), std::to_string(c.tsv_count),
                 pdn::to_string(c.tsv_location),
                 (c.dedicated_tsvs || c.mounting == pdn::Mounting::kOffChip) ? "Y" : "N",
                 pdn::to_string(c.bonding), c.rdl != pdn::RdlMode::kNone ? "Y" : "N",
                 c.wire_bonding ? "Y" : "N", bench::vs_paper(best.predicted_ir_mv, row.ir_mv),
                 util::fmt_fixed(best.measured_ir_mv, 2), bench::vs_paper(best.cost, row.cost)});
    }
    // Baseline row.
    {
      const auto& c = b.baseline;
      const double ir = platform.measure_ir_mv(c);
      t.add_separator();
      t.add_row({"base", util::fmt_fixed(c.m2_usage * 100.0, 0),
                 util::fmt_fixed(c.m3_usage * 100.0, 0), std::to_string(c.tsv_count),
                 pdn::to_string(c.tsv_location),
                 (c.dedicated_tsvs || c.mounting == pdn::Mounting::kOffChip) ? "Y" : "N",
                 pdn::to_string(c.bonding), c.rdl != pdn::RdlMode::kNone ? "Y" : "N",
                 c.wire_bonding ? "Y" : "N", "-", bench::vs_paper(ir, ref.baseline_ir),
                 bench::vs_paper(cost::total_cost(c), ref.baseline_cost)});
    }
    std::cout << t.render();
    std::cout << "regression quality: worst RMSE " << util::fmt_fixed(opt.worst_rmse(), 3)
              << " mV, worst R^2 " << util::fmt_fixed(opt.worst_r_squared(), 4) << " over "
              << opt.total_samples() << " R-Mesh samples ("
              << util::fmt_fixed(timer.elapsed_seconds(), 1) << " s)\n\n";
  }
  std::cout << "paper: packaging options (WB, F2F) are picked first (cheap, effective);\n"
            << "piling on TSVs is a poor deal; HMC prefers distributed TSVs and F2B.\n\n";
  return 0;
}
