// Table 5: impact of memory state and I/O activity in off-chip stacked DDR3.
// Active banks sit in the worst-case edge column; I/O activity follows the
// shared-bandwidth convention (k active dies -> activity 1/k per die) with
// the explicit levels the paper sweeps.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Table 5", "Memory state and I/O activity, off-chip stacked DDR3");

  core::Platform p(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  auto f2b = p.benchmark().baseline;
  auto f2f = f2b;
  f2f.bonding = pdn::BondingStyle::kF2F;

  struct Row {
    const char* state;
    double activity;
    double paper_active_mw;
    double paper_total_mw;
    double paper_f2b;
    double paper_f2f;
  };
  const Row rows[] = {
      {"0-0-0-2", 1.00, 220.5, 310.5, 30.03, 17.18},
      {"2-0-0-0", 1.00, 220.5, 310.5, 26.26, 14.61},
      {"0-0-0-2", 0.50, 175.5, 265.5, 26.42, 15.15},
      {"0-0-2-2", 0.50, 175.5, 411.0, 28.14, 27.21},
      {"0-0-0-2", 0.25, 126.0, 216.0, 22.93, 13.23},
      {"2-2-2-2", 0.25, 126.0, 504.0, 24.82, 23.57},
  };

  util::Table t({"Memory state", "I/O activity", "active-die power (mW)", "total (mW)",
                 "F2B (mV)", "F2F+B2B (mV)"});
  for (const auto& row : rows) {
    const auto rb = p.analyze(f2b, row.state, row.activity);
    const auto rf = p.analyze(f2f, row.state, row.activity);
    t.add_row({row.state, util::fmt_percent(row.activity - 0.0, 0),
               bench::vs_paper(rb.active_die_power_mw, row.paper_active_mw, 1),
               util::fmt_fixed(rb.total_power_mw, 1), bench::vs_paper(rb.dram_max_mv, row.paper_f2b),
               bench::vs_paper(rf.dram_max_mv, row.paper_f2f)});
  }
  std::cout << t.render();

  // The two headline observations of Section 5.1.
  const double f2b_0002 = p.analyze(f2b, "0-0-0-2", 1.0).dram_max_mv;
  const double f2b_2222 = p.analyze(f2b, "2-2-2-2", 0.25).dram_max_mv;
  const double f2f_0002 = p.analyze(f2f, "0-0-0-2", 1.0).dram_max_mv;
  const double f2f_0022 = p.analyze(f2f, "0-0-2-2", 0.5).dram_max_mv;
  std::cout << "balanced 2-2-2-2 vs concentrated 0-0-0-2 (F2B): "
            << util::fmt_fixed(f2b_2222, 2) << " < " << util::fmt_fixed(f2b_0002, 2)
            << " mV  (paper: 24.82 < 30.03)\n";
  std::cout << "F2F worst case moves to the overlapping 0-0-2-2 state: "
            << util::fmt_fixed(f2f_0022, 2) << " vs " << util::fmt_fixed(f2f_0002, 2)
            << " mV  (paper: 27.21 vs 17.18)\n\n";
  return 0;
}
