// Table 7 + Figure 9: a case study of how design/packaging IR-drop
// optimizations translate into DRAM performance. Six stacked DDR3 designs
// are compared; Figure 9 sweeps the IR-drop constraint and reports the
// runtime of the IR-aware policy on each design. The paper's observation:
// under tight constraints the F2F design (case 3) overtakes the F2B design
// with 1.5x PDN metal (case 2) because PDN sharing shines at low activity.

#include <iostream>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Table 7 / Figure 9",
                      "Design cases vs IR constraint: runtime of the IR-aware policy");

  core::Platform off(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  core::Platform on(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OnChip));

  struct Case {
    const char* label;
    core::Platform* platform;
    pdn::PdnConfig config;
    double paper_ir;
  };
  std::vector<Case> cases;
  {
    auto c1 = off.benchmark().baseline;
    cases.push_back({"1: off-chip F2B 1x", &off, c1, 30.03});
    auto c2 = c1;
    c2.metal_usage_scale = 1.5;
    cases.push_back({"2: off-chip F2B 1.5x PDN", &off, c2, 22.15});
    auto c3 = c1;
    c3.bonding = pdn::BondingStyle::kF2F;
    cases.push_back({"3: off-chip F2F 1x", &off, c3, 17.18});
    auto c4 = on.benchmark().baseline;
    c4.dedicated_tsvs = false;
    cases.push_back({"4: on-chip F2B shared", &on, c4, 64.41});
    auto c5 = c4;
    c5.wire_bonding = true;
    cases.push_back({"5: on-chip F2B shared + WB", &on, c5, 30.04});
    auto c6 = c4;
    c6.bonding = pdn::BondingStyle::kF2F;
    cases.push_back({"6: on-chip F2F shared", &on, c6, 65.43});
  }

  util::Table t7({"Case", "Max IR drop of 0-0-0-2 (mV)"});
  for (const auto& c : cases) {
    t7.add_row({c.label,
                bench::vs_paper(c.platform->analyze(c.config, "0-0-0-2").dram_max_mv, c.paper_ir)});
  }
  std::cout << t7.render() << "\n";

  // Figure 9: runtime vs IR constraint (IR-aware FCFS policy).
  std::vector<double> constraints = {12, 14, 16, 18, 20, 22, 24, 26, 28, 30,
                                     34, 40, 48, 56, 64, 72};
  std::vector<std::string> header = {"constraint (mV)"};
  for (const auto& c : cases) header.push_back(c.label);
  util::Table fig9(header);
  for (const double limit : constraints) {
    std::vector<std::string> row = {util::fmt_fixed(limit, 0)};
    for (const auto& c : cases) {
      const auto r = c.platform->simulate(
          c.config, memctrl::ir_aware_policy(limit, memctrl::SchedulingKind::kFcfs));
      row.push_back(r.feasible ? util::fmt_fixed(r.runtime_us, 1) : "infeasible");
    }
    fig9.add_row(row);
  }
  std::cout << fig9.render();
  std::cout << "paper: every IR optimization improves runtime at some constraint; the F2F\n"
            << "design tolerates the tightest constraints (crossover vs case 2 below ~18 mV).\n\n";
  return 0;
}
