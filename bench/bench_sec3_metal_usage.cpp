// Section 3 (intro): "with 2x PDN metal usage, IR drop is reduced more than
// 40% for stacked DDR3". Sweeps the metal-usage multiplier on the off-chip
// baseline.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Section 3", "PDN metal usage sweep, off-chip stacked DDR3, state 0-0-0-2");

  core::Platform p(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  const auto base = p.benchmark().baseline;
  const double ir0 = p.analyze(base, "0-0-0-2").dram_max_mv;

  util::Table t({"PDN metal", "max IR (mV)", "reduction"});
  for (double scale : {1.0, 1.25, 1.5, 1.75, 2.0}) {
    auto cfg = base;
    cfg.metal_usage_scale = scale;
    const double ir = p.analyze(cfg, "0-0-0-2").dram_max_mv;
    t.add_row({util::fmt_fixed(scale, 2) + "x", util::fmt_fixed(ir, 2),
               util::fmt_percent(ir / ir0 - 1.0)});
  }
  std::cout << t.render();
  std::cout << "paper: 2x usage reduces IR drop by more than 40%\n\n";
  return 0;
}
