// Extension bench: read/write mix. The paper studies reads only (write IR
// drop is nearly identical; each activation writes back on close). With the
// write path modeled, the bus-turnaround penalties (tWTR / tRTW / tWR) make
// mixed traffic measurably slower -- quantified here per policy.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"
#include "memctrl/workload.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Extension: read/write mix",
                      "off-chip stacked DDR3, 10k requests, 24 mV constraint");

  core::Platform p(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  const auto cfg = p.benchmark().baseline;

  util::Table t({"write fraction", "policy", "runtime (us)", "ops/clk", "row hit", "max IR (mV)"});
  for (const double wf : {0.0, 0.2, 0.5}) {
    auto wl = p.benchmark().workload;
    wl.write_fraction = wf;
    const auto reqs = memctrl::generate_workload(wl);
    for (const auto& [label, policy] :
         {std::pair<const char*, memctrl::PolicyConfig>{"standard", memctrl::standard_policy()},
          {"IR-aware DistR", memctrl::ir_aware_policy(24.0, memctrl::SchedulingKind::kDistR)}}) {
      const auto r = p.simulate(cfg, policy, reqs);
      t.add_row({util::fmt_percent(wf, 0), label, util::fmt_fixed(r.runtime_us, 2),
                 util::fmt_fixed(r.bandwidth_reads_per_clk, 3),
                 util::fmt_percent(r.row_hit_fraction, 0), util::fmt_fixed(r.max_ir_mv, 2)});
    }
  }
  std::cout << t.render();
  std::cout << "Writes pay tWTR/tRTW turnarounds and tWR before closing a row; the IR-aware\n"
            << "policy ordering is unchanged by the mix (write IR ~ read IR, Section 2.2).\n\n";
  return 0;
}
