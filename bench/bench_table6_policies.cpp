// Table 6: impact of the architectural read policy in stacked DDR3 (F2B
// off-chip baseline design, 10,000 reads, IR constraint 24 mV).

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Table 6", "Read scheduling policies, off-chip stacked DDR3, 24 mV limit");

  core::Platform p(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  const auto cfg = p.benchmark().baseline;

  struct Row {
    const char* label;
    memctrl::PolicyConfig policy;
    double paper_runtime;
    double paper_bw;
    double paper_ir;
  };
  const Row rows[] = {
      {"Standard (tRRD/tFAW, FCFS)", memctrl::standard_policy(), 109.3, 0.114, 30.03},
      {"IR-drop-aware FCFS", memctrl::ir_aware_policy(24.0, memctrl::SchedulingKind::kFcfs),
       84.68, 0.148, 23.98},
      {"IR-drop-aware DistR", memctrl::ir_aware_policy(24.0, memctrl::SchedulingKind::kDistR),
       75.85, 0.165, 23.98},
  };

  double std_runtime = 0.0;
  double std_bw = 0.0;
  util::Table t({"Policy", "Runtime (us)", "Bandwidth (reads/clk)", "Max IR (mV)",
                 "runtime delta", "bandwidth delta"});
  for (const auto& row : rows) {
    const auto r = p.simulate(cfg, row.policy);
    if (std_runtime == 0.0) {
      std_runtime = r.runtime_us;
      std_bw = r.bandwidth_reads_per_clk;
    }
    t.add_row({row.label, bench::vs_paper(r.runtime_us, row.paper_runtime),
               bench::vs_paper(r.bandwidth_reads_per_clk, row.paper_bw, 3),
               bench::vs_paper(r.max_ir_mv, row.paper_ir),
               bench::delta_vs_paper(r.runtime_us / std_runtime - 1.0,
                                     row.paper_runtime / 109.3 - 1.0),
               bench::delta_vs_paper(r.bandwidth_reads_per_clk / std_bw - 1.0,
                                     row.paper_bw / 0.114 - 1.0)});
  }
  std::cout << t.render();
  std::cout << "paper: the IR-aware LUT lifts performance 22.6% (FCFS) / 30.6% (DistR) while\n"
            << "cutting the worst observed IR drop ~20% -- same ordering reproduced here.\n\n";
  return 0;
}
