// Table 8: cost model summary -- evaluates every cost term over its input
// range and prints the same rows the paper tabulates.

#include <iostream>

#include "bench_util.hpp"
#include "cost/cost_model.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Table 8", "Cost model summary (normalized cost terms)");

  const auto term = [](pdn::PdnConfig cfg, auto pick) {
    return pick(cost::compute_cost(cfg));
  };
  pdn::PdnConfig base;
  base.mounting = pdn::Mounting::kOnChip;  // avoids the stand-alone TSV term
  base.tsv_location = pdn::TsvLocation::kCenter;

  util::Table t({"Solution", "Abbrev", "Input range", "Cost range", "paper"});
  {
    auto lo = base;
    lo.m2_usage = 0.10;
    auto hi = base;
    hi.m2_usage = 0.20;
    t.add_row({"M2 VDD usage", "M2", "10%-20%",
               util::fmt_fixed(term(lo, [](auto c) { return c.m2; }), 3) + "-" +
                   util::fmt_fixed(term(hi, [](auto c) { return c.m2; }), 3),
               "0.025-0.05"});
  }
  {
    auto lo = base;
    lo.m3_usage = 0.10;
    auto hi = base;
    hi.m3_usage = 0.40;
    t.add_row({"M3 VDD usage", "M3", "10%-40%",
               util::fmt_fixed(term(lo, [](auto c) { return c.m3; }), 3) + "-" +
                   util::fmt_fixed(term(hi, [](auto c) { return c.m3; }), 3),
               "0.025-0.10"});
  }
  {
    auto lo = base;
    lo.tsv_count = 15;
    auto hi = base;
    hi.tsv_count = 480;
    t.add_row({"Power TSV # (sqrt law)", "TC", "15-480",
               util::fmt_fixed(term(lo, [](auto c) { return c.tsv_count; }), 3) + "-" +
                   util::fmt_fixed(term(hi, [](auto c) { return c.tsv_count; }), 3),
               "0.078-0.44"});
  }
  {
    auto yes = base;
    yes.dedicated_tsvs = true;
    t.add_row({"Dedicated TSV", "TD", "Yes/No",
               util::fmt_fixed(term(yes, [](auto c) { return c.dedicated; }), 2) + "/0", "0.06/0"});
  }
  {
    auto f2f = base;
    f2f.bonding = pdn::BondingStyle::kF2F;
    t.add_row({"Bonding style", "BD", "F2B/F2F",
               util::fmt_fixed(term(base, [](auto c) { return c.bonding; }), 3) + "/" +
                   util::fmt_fixed(term(f2f, [](auto c) { return c.bonding; }), 3),
               "0.045/0.06"});
  }
  {
    auto rdl = base;
    rdl.rdl = pdn::RdlMode::kBottomOnly;
    t.add_row({"RDL layer", "RL", "Yes/No",
               util::fmt_fixed(term(rdl, [](auto c) { return c.rdl; }), 2) + "/0", "0.05/0"});
  }
  {
    auto wb = base;
    wb.wire_bonding = true;
    t.add_row({"Wire bonding", "WB", "Yes/No",
               util::fmt_fixed(term(wb, [](auto c) { return c.wire_bond; }), 2) + "/0", "0.03/0"});
  }
  {
    auto edge = base;
    edge.tsv_count = 100;
    edge.tsv_location = pdn::TsvLocation::kEdge;
    auto dist = edge;
    dist.tsv_location = pdn::TsvLocation::kDistributed;
    t.add_row({"TSV location", "TL", "C / E / D",
               "0 / 0.5xTC / 1.0xTC", "0 / 0.5xTC / TC"});
    (void)dist;
  }
  std::cout << t.render();
  std::cout << "stand-alone (off-chip) stacks additionally always carry the dedicated-TSV\n"
            << "network cost (visible in the paper's Table 9 cost column).\n\n";
  return 0;
}
