// Table 2 + Figure 6: TSV location and RDL options for the off-chip stacked
// DDR3 design. Four options:
//   (a) edge TSVs on memory, matching logic pattern, no RDL  (paper 30.03 mV)
//   (b) center TSVs on both sides, no RDL                    (paper 50.76 mV)
//   (c) edge on memory + center on logic side + RDL          (paper 38.46 mV)
//   (d) center TSVs + RDL                                    (paper 49.36 mV)
// Also reports the Section 3.1 on-chip coupling numbers.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"
#include "cost/cost_model.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Table 2", "TSV location and RDL options, off-chip stacked DDR3, 0-0-0-2");

  core::Platform p(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  const auto base = p.benchmark().baseline;

  struct Option {
    const char* label;
    pdn::TsvLocation mem;
    pdn::TsvLocation logic;
    pdn::RdlMode rdl;
    double paper_mv;
  };
  const Option options[] = {
      {"(a) edge + edge, no RDL", pdn::TsvLocation::kEdge, pdn::TsvLocation::kEdge,
       pdn::RdlMode::kNone, 30.03},
      {"(b) center + center, no RDL", pdn::TsvLocation::kCenter, pdn::TsvLocation::kCenter,
       pdn::RdlMode::kNone, 50.76},
      {"(c) edge + center + RDL", pdn::TsvLocation::kEdge, pdn::TsvLocation::kCenter,
       pdn::RdlMode::kBottomOnly, 38.46},
      {"(d) center + center + RDL", pdn::TsvLocation::kCenter, pdn::TsvLocation::kCenter,
       pdn::RdlMode::kBottomOnly, 49.36},
  };

  util::Table t({"Design option", "IR drop (mV)", "cost"});
  for (const auto& o : options) {
    auto cfg = base;
    cfg.tsv_location = o.mem;
    cfg.logic_tsv_location = o.logic;
    cfg.rdl = o.rdl;
    const double ir = p.analyze(cfg, "0-0-0-2").dram_max_mv;
    t.add_row({o.label, bench::vs_paper(ir, o.paper_mv), util::fmt_fixed(cost::total_cost(cfg), 2)});
  }
  std::cout << t.render();

  // Section 3.1 companion numbers.
  core::Platform on(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OnChip));
  auto shared = on.benchmark().baseline;
  shared.dedicated_tsvs = false;
  const auto r = on.analyze(shared, "0-0-0-2");
  std::cout << "\nSection 3.1: on-chip mounting with shared PG TSVs couples the logic noise\n"
            << "  DRAM max IR  : " << bench::vs_paper(r.dram_max_mv, 64.41) << " mV\n"
            << "  logic noise  : " << bench::vs_paper(r.logic_max_mv, 50.05) << " mV\n"
            << "  off-chip ref : "
            << bench::vs_paper(p.analyze(base, "0-0-0-2").dram_max_mv, 30.03) << " mV\n\n";
  return 0;
}
