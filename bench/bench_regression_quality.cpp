// Regression quality check (Section 6.1): the paper fits its IR-drop model
// with RMSE < 0.135 and R^2 > 0.999 and reduces a 4637-hour brute force to
// ten hours of sampling. This bench fits the off-chip stacked DDR3 space and
// reports per-choice fit quality plus cross-validation on held-out points.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Regression quality",
                      "IR-drop model fits per discrete choice, off-chip stacked DDR3");

  core::Platform platform(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  util::Timer timer;
  auto opt = platform.make_cooptimizer();
  const auto& fits = opt.fit_models();

  util::Table t({"TL", "TD", "BD", "RL", "WB", "samples", "RMSE (mV)", "R^2"});
  for (const auto& fc : fits) {
    t.add_row({pdn::to_string(fc.choice.tsv_location), fc.choice.dedicated ? "Y" : "N",
               pdn::to_string(fc.choice.bonding),
               fc.choice.rdl != pdn::RdlMode::kNone ? "Y" : "N",
               fc.choice.wire_bonding ? "Y" : "N", std::to_string(fc.sample_count),
               util::fmt_fixed(fc.model.rmse(), 4), util::fmt_fixed(fc.model.r_squared(), 5)});
  }
  std::cout << t.render();

  // Held-out validation on interior points of the first choice.
  const auto& fc = fits.front();
  const auto& space = opt.space();
  double worst_err = 0.0;
  for (double m2 : {0.12, 0.17}) {
    for (double m3 : {0.18, 0.33}) {
      for (int tc : {48, 200}) {
        const auto cfg = opt::make_config(space, fc.choice, m2, m3, tc);
        const double truth = platform.measure_ir_mv(cfg);
        const double pred = fc.model.predict({m2, m3, static_cast<double>(tc)});
        worst_err = std::max(worst_err, std::abs(pred - truth) / truth);
      }
    }
  }
  std::cout << "held-out worst relative error (choice #1): " << util::fmt_percent(worst_err)
            << "\n";
  std::cout << "fit wall time: " << util::fmt_fixed(timer.elapsed_seconds(), 1) << " s over "
            << opt.total_samples() << " R-Mesh samples\n";
  std::cout << "paper: RMSE < 0.135, R^2 > 0.999; regression cuts 4637 h of brute force to 10 h\n\n";
  return 0;
}
