// Figure 4: validation of the fast R-Mesh solver against a signoff-grade
// reference. The paper compares its R-Mesh (HSPICE netlist) against Cadence
// EPS on a 2D DDR3 die with the two left banks in interleaving read mode:
// 32.2 vs 32.6 mV, 1.3% error, 517x speedup. Our substitute reference is a
// dense direct solve on a 2x-refined mesh with full element stamping.

#include <iostream>

#include "bench_util.hpp"
#include "core/benchmarks.hpp"
#include "irdrop/analysis.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Figure 4",
                      "R-Mesh vs reference solver on the 2D DDR3 die (left bank pair reading)");

  const auto bench_cfg = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  const auto& spec = bench_cfg.stack;
  irdrop::PowerBinding power;
  power.dram = bench_cfg.dram_power;
  power.logic = bench_cfg.logic_power;

  // One-die memory state: the left (edge column) interleave pair at full I/O.
  const auto state = power::parse_memory_state("2a", spec.dram_spec, 1.0);

  // The signoff reference ("EPS" stand-in): a 2x-refined mesh solved exactly
  // with dense Cholesky. The fast R-Mesh runs IC-PCG. Two comparisons:
  //  (1) solver validation -- IC-PCG vs dense on the SAME refined mesh
  //      (isolates numerical error, the analogue of R-Mesh-netlist vs SPICE);
  //  (2) model reduction -- the production coarse mesh vs the refined
  //      reference (the analogue of the paper's reduced resistor count).
  const auto fine = pdn::build_single_die(spec, bench_cfg.baseline, 2);

  util::Timer timer;
  const irdrop::IrAnalyzer reference(fine, spec.dram_fp, spec.logic_fp, power,
                                     irdrop::SolverKind::kDense);
  const double ir_ref = reference.analyze(state).dram_max_mv;
  const double secs_ref = bench::lap_s(timer);

  const irdrop::IrAnalyzer pcg_fine(fine, spec.dram_fp, spec.logic_fp, power,
                                    irdrop::SolverKind::kPcgIc);
  const double ir_pcg = pcg_fine.analyze(state).dram_max_mv;
  const double secs_pcg = bench::lap_s(timer);

  const auto coarse = pdn::build_single_die(spec, bench_cfg.baseline, 1);
  const irdrop::IrAnalyzer fast(coarse, spec.dram_fp, spec.logic_fp, power,
                                irdrop::SolverKind::kPcgIc);
  const double ir_fast = fast.analyze(state).dram_max_mv;
  const double secs_fast = bench::lap_s(timer);

  util::Table t({"solver", "mesh nodes", "max IR (mV)", "runtime (s)"});
  t.add_row({"reference: dense direct, 2x mesh", std::to_string(fine.node_count()),
             util::fmt_fixed(ir_ref, 2), util::fmt_fixed(secs_ref, 3)});
  t.add_row({"R-Mesh: IC-PCG, 2x mesh", std::to_string(fine.node_count()),
             util::fmt_fixed(ir_pcg, 2), util::fmt_fixed(secs_pcg, 3)});
  t.add_row({"R-Mesh: IC-PCG, production mesh", std::to_string(coarse.node_count()),
             util::fmt_fixed(ir_fast, 2), util::fmt_fixed(secs_fast, 3)});
  std::cout << t.render();

  const double solver_err = std::abs(ir_pcg - ir_ref) / ir_ref;
  const double model_err = std::abs(ir_fast - ir_ref) / ir_ref;
  std::cout << "solver error (same mesh)        : " << util::fmt_percent(solver_err, 4)
            << ", speedup " << util::fmt_fixed(secs_ref / std::max(1e-9, secs_pcg), 1) << "x\n";
  std::cout << "reduced-mesh error vs reference : " << util::fmt_percent(model_err)
            << ", speedup " << util::fmt_fixed(secs_ref / std::max(1e-9, secs_fast), 1) << "x\n";
  std::cout << "(paper: R-Mesh vs Cadence EPS 32.2 vs 32.6 mV -- 1.3% error, 517x speedup;\n"
            << " EPS additionally performs full layout parasitic extraction)\n\n";
  return 0;
}
