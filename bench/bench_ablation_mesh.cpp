// Ablation: mesh discretization. Sweeps the R-Mesh node pitch on the
// off-chip baseline and reports the IR drop and solve cost, quantifying the
// accuracy/speed tradeoff behind the production pitch (0.30 mm).

#include <iostream>

#include "bench_util.hpp"
#include "core/benchmarks.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Ablation: mesh pitch",
                      "off-chip stacked DDR3 baseline, state 0-0-0-2");

  const auto bench_cfg = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  irdrop::PowerBinding power;
  power.dram = bench_cfg.dram_power;
  power.logic = bench_cfg.logic_power;

  util::Table t({"pitch (mm)", "nodes", "max IR (mV)", "setup (ms)", "per-state solve (ms)"});
  for (double pitch : {0.60, 0.45, 0.30, 0.24, 0.20, 0.15}) {
    auto spec = bench_cfg.stack;
    spec.grid_pitch = pitch;
    util::Timer timer;
    const auto built = pdn::build_stack(spec, bench_cfg.baseline);
    const irdrop::IrAnalyzer analyzer(built.model, spec.dram_fp, spec.logic_fp, power);
    const double setup_ms = bench::lap_ms(timer);

    const auto state = power::parse_memory_state("0-0-0-2", spec.dram_spec);
    const auto r = analyzer.analyze(state);
    const double solve_ms = bench::lap_ms(timer);

    t.add_row({util::fmt_fixed(pitch, 2), std::to_string(built.model.node_count()),
               util::fmt_fixed(r.dram_max_mv, 2), util::fmt_fixed(setup_ms, 1),
               util::fmt_fixed(solve_ms, 1)});
  }
  std::cout << t.render();
  std::cout << "The production pitch (0.30 mm) balances hotspot resolution against the\n"
            << "cost of LUT construction (81 states) and co-optimization (~10^3 samples).\n\n";
  return 0;
}
