#pragma once

/// @file bench_util.hpp
/// @brief Shared helpers for the reproduction bench binaries.

#include <iostream>
#include <string>

#include "util/string_util.hpp"
#include "util/table.hpp"

namespace pdn3d::bench {

inline void print_header(const std::string& experiment, const std::string& description) {
  std::cout << "==========================================================================\n"
            << experiment << "\n"
            << description << "\n"
            << "==========================================================================\n";
}

/// "ours (paper X)" cell.
inline std::string vs_paper(double ours, double paper, int decimals = 2) {
  return util::fmt_fixed(ours, decimals) + " (paper " + util::fmt_fixed(paper, decimals) + ")";
}

/// Percent-change cell, ours vs paper reference change.
inline std::string delta_vs_paper(double ours_frac, double paper_frac) {
  return util::fmt_percent(ours_frac) + " (paper " + util::fmt_percent(paper_frac) + ")";
}

}  // namespace pdn3d::bench
