#pragma once

/// @file bench_util.hpp
/// @brief Shared helpers for the reproduction bench binaries.

#include <iostream>
#include <string>

#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pdn3d::bench {

/// Per-phase timings off one util::Timer stopwatch -- the same steady clock
/// the observability layer uses, so bench numbers and trace spans agree.
inline double lap_ms(util::Timer& timer) { return timer.lap_seconds() * 1e3; }
inline double lap_s(util::Timer& timer) { return timer.lap_seconds(); }

inline void print_header(const std::string& experiment, const std::string& description) {
  std::cout << "==========================================================================\n"
            << experiment << "\n"
            << description << "\n"
            << "==========================================================================\n";
}

/// "ours (paper X)" cell.
inline std::string vs_paper(double ours, double paper, int decimals = 2) {
  return util::fmt_fixed(ours, decimals) + " (paper " + util::fmt_fixed(paper, decimals) + ")";
}

/// Percent-change cell, ours vs paper reference change.
inline std::string delta_vs_paper(double ours_frac, double paper_frac) {
  return util::fmt_percent(ours_frac) + " (paper " + util::fmt_percent(paper_frac) + ")";
}

}  // namespace pdn3d::bench
