// Table 3: impact of dedicated TSVs and backside wire bonding on the stacked
// DDR3 design (state 0-0-0-2).

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Table 3", "Dedicated TSVs and wire bonding, stacked DDR3, 0-0-0-2");

  core::Platform on(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OnChip));
  core::Platform off(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));

  struct Row {
    const char* design;
    const char* dedicated;
    core::Platform* platform;
    bool ded;
    double paper_base;
    double paper_wb;
  };
  Row rows[] = {
      {"On-chip", "no", &on, false, 64.41, 30.04},
      {"On-chip", "yes", &on, true, 31.18, 27.18},
      {"Off-chip", "yes", &off, true, 30.03, 27.10},
  };

  util::Table t({"Design", "Dedicated TSV?", "Baseline (mV)", "Wire-bonded (mV)", "delta"});
  for (const auto& row : rows) {
    auto cfg = row.platform->benchmark().baseline;
    cfg.dedicated_tsvs = row.ded && cfg.mounting == pdn::Mounting::kOnChip;
    auto wb = cfg;
    wb.wire_bonding = true;
    const double v0 = row.platform->analyze(cfg, "0-0-0-2").dram_max_mv;
    const double v1 = row.platform->analyze(wb, "0-0-0-2").dram_max_mv;
    t.add_row({row.design, row.dedicated, bench::vs_paper(v0, row.paper_base),
               bench::vs_paper(v1, row.paper_wb),
               bench::delta_vs_paper(v1 / v0 - 1.0, row.paper_wb / row.paper_base - 1.0)});
  }
  std::cout << t.render();
  std::cout << "paper: both options provide a direct supply; combining them adds little.\n\n";
  return 0;
}
