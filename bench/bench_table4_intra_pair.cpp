// Table 4 + Figure 8: impact of intra-pair overlapping on the F2F benefit in
// off-chip stacked DDR3. Memory-state grammar: "0-0-2b-2a" puts a two-bank
// interleave pair in bank column b of DRAM3 and column a of DRAM4.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Table 4", "Intra-pair overlapping, F2B vs F2F+B2B, off-chip stacked DDR3");

  core::Platform p(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  auto f2b = p.benchmark().baseline;
  auto f2f = f2b;
  f2f.bonding = pdn::BondingStyle::kF2F;

  struct Case {
    const char* state;
    const char* overlap;
    double paper_f2b;
    double paper_f2f;
  };
  const Case cases[] = {
      {"0-0-2a-2a", "yes", 28.14, 27.21},
      {"0-0-2b-2b", "yes", 18.06, 17.42},
      {"0-2a-0-2a", "no", 27.32, 15.24},
      {"2a-0-0-2a", "no", 26.51, 15.24},
      {"0-0-2b-2a", "no", 27.38, 17.98},
      {"0-0-2c-2a", "no", 27.04, 17.10},
      {"0-0-2d-2a", "no", 26.86, 15.27},
  };

  util::Table t({"Memory state", "Intra-pair overlap", "F2B (mV)", "F2F+B2B (mV)", "delta"});
  for (const auto& c : cases) {
    const double vb = p.analyze(f2b, c.state).dram_max_mv;
    const double vf = p.analyze(f2f, c.state).dram_max_mv;
    t.add_row({c.state, c.overlap, bench::vs_paper(vb, c.paper_f2b),
               bench::vs_paper(vf, c.paper_f2f),
               bench::delta_vs_paper(vf / vb - 1.0, c.paper_f2f / c.paper_f2b - 1.0)});
  }
  std::cout << t.render();
  std::cout << "paper: overlapping pairs gain ~3%; separated pairs gain 34-44%, growing\n"
            << "with the lateral separation of the active regions.\n\n";
  return 0;
}
