// Table 9, EM-aware variant: co-optimization under a hard electromigration
// constraint (docs/EM.md). The HMC lowest-cost (alpha = 0) optimum is
// searched twice over the same fitted models -- once unconstrained (the
// paper's Table 9 row) and once with a TSV current-density limit the
// metal-starved cheapest corner violates, attached as a CoOptimizer hard
// constraint. The constrained search must exclude every EM-violating
// candidate (they show up as typed SkippedPoints) and land on a winner whose
// re-measured branch currents pass the limit -- EM margin is bought with
// more M2 metal, the paper's co-optimization story with a lifetime axis.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"
#include "cost/cost_model.hpp"
#include "irdrop/em.hpp"
#include "opt/cooptimizer.hpp"
#include "util/timer.hpp"

namespace {

/// TSV current density (MA/cm^2) and fleet-worst MTTF of a design point.
struct EmSummary {
  double tsv_j = 0.0;
  double mttf_hours = 0.0;
  bool clean = true;
};

EmSummary summarize(pdn3d::core::Platform& platform, const pdn3d::pdn::PdnConfig& config,
                    const pdn3d::irdrop::EmOptions& em) {
  const pdn3d::irdrop::EmReport rep = platform.measure_em(config, em);
  EmSummary s;
  if (const auto* tsv = rep.find(pdn3d::pdn::ElementKind::kTsv)) s.tsv_j = tsv->max_j_ma_cm2;
  s.mttf_hours = rep.min_mttf_hours;
  s.clean = rep.clean();
  return s;
}

}  // namespace

int main() {
  using namespace pdn3d;
  bench::print_header("Table 9 / EM",
                      "Co-optimized HMC optimum under a hard EM constraint");

  // Sited between the cheapest corner's TSV density (~0.358 MA/cm^2 -- the
  // metal-starved M2=10% design crowds its TSVs) and its M2=11% sibling
  // (~0.344): the unconstrained optimum violates, a nearby design clears.
  irdrop::EmOptions em;
  em.tsv_limit_ma_cm2 = 0.35;
  const double alpha = 0.0;

  core::Platform platform(core::make_benchmark(core::BenchmarkKind::kHmc));
  const auto& b = platform.benchmark();
  std::cout << "--- " << b.name << " (alpha " << util::fmt_fixed(alpha, 1) << ", TSV limit "
            << util::fmt_fixed(*em.tsv_limit_ma_cm2, 3) << " MA/cm^2) ---\n";

  util::Timer timer;
  auto optimizer = platform.make_cooptimizer();
  optimizer.fit_models();

  util::Table t({"constraint", "M2%", "M3%", "TC", "TL", "BD", "RL", "WB",
                 "R-Mesh IR (mV)", "cost", "TSV J (MA/cm^2)", "min MTTF (h)", "EM clean"});
  const auto add_row = [&](const char* label, const opt::Optimum& best) {
    const auto& c = best.config;
    const EmSummary s = summarize(platform, c, em);
    t.add_row({label, util::fmt_fixed(c.m2_usage * 100.0, 0),
               util::fmt_fixed(c.m3_usage * 100.0, 0), std::to_string(c.tsv_count),
               pdn::to_string(c.tsv_location), pdn::to_string(c.bonding),
               c.rdl != pdn::RdlMode::kNone ? "Y" : "N", c.wire_bonding ? "Y" : "N",
               util::fmt_fixed(best.measured_ir_mv, 2), util::fmt_fixed(best.cost, 2),
               util::fmt_fixed(s.tsv_j, 4), util::fmt_fixed(s.mttf_hours, 0),
               s.clean ? "Y" : "N"});
    return s;
  };

  const opt::Optimum unconstrained = optimizer.optimize(alpha);
  const EmSummary before = add_row("none", unconstrained);

  optimizer.set_constraint([&platform, &em](const pdn::PdnConfig& config) {
    const irdrop::EmReport rep = platform.measure_em(config, em);
    if (rep.clean()) return std::string{};
    return "em-limit: " + std::to_string(rep.total_violations) + " violation(s)";
  });
  const opt::Optimum constrained = optimizer.optimize(alpha);
  const EmSummary after = add_row("em", constrained);
  std::cout << t.render();

  std::size_t excluded = 0;
  for (const auto& p : optimizer.skipped_points()) {
    if (p.kind == opt::SkippedPoint::Kind::kConstraint) ++excluded;
  }
  std::cout << "candidate optima excluded by the EM constraint: " << excluded << "\n";
  std::cout << "constrained winner is EM-clean: " << (after.clean ? "yes" : "NO (BUG)")
            << "; unconstrained winner was " << (before.clean ? "clean" : "violating") << " ("
            << util::fmt_fixed(timer.elapsed_seconds(), 1) << " s)\n\n";
  std::cout << "takeaway: EM limits act as a hard feasibility wall, not a soft penalty --\n"
            << "the optimizer walks to the next-best design rather than report a violator.\n\n";
  return (after.clean && excluded > 0) ? 0 : 1;
}
