// Solver micro-benchmarks (google-benchmark): R-Mesh assembly and DC solve
// cost across mesh refinements and preconditioners. Not a paper table, but
// documents the per-solve cost the LUT construction and co-optimization
// sweeps are built on.

#include <benchmark/benchmark.h>

#include "core/benchmarks.hpp"
#include "exec/thread_pool.hpp"
#include "irdrop/analysis.hpp"
#include "irdrop/eval_context.hpp"
#include "irdrop/lut.hpp"
#include "irdrop/montecarlo.hpp"
#include "pdn/stack_builder.hpp"

namespace {

using namespace pdn3d;

const core::Benchmark& ddr3() {
  static const core::Benchmark b = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  return b;
}

void BM_BuildStack(benchmark::State& state) {
  const auto& b = ddr3();
  for (auto _ : state) {
    auto built = pdn::build_stack(b.stack, b.baseline);
    benchmark::DoNotOptimize(built.model.node_count());
  }
}
BENCHMARK(BM_BuildStack);

void BM_AnalyzerSetup(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  for (auto _ : state) {
    irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
    benchmark::DoNotOptimize(&analyzer);
  }
}
BENCHMARK(BM_AnalyzerSetup);

void BM_SolveState(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const auto kind = static_cast<irdrop::SolverKind>(state.range(0));
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power, kind);
  const auto st = power::parse_memory_state("0-0-0-2", b.stack.dram_spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(st).dram_max_mv);
  }
  switch (kind) {
    case irdrop::SolverKind::kPcgIc: state.SetLabel("IC-PCG"); break;
    case irdrop::SolverKind::kPcgJacobi: state.SetLabel("Jacobi-PCG"); break;
    case irdrop::SolverKind::kBandedDirect: state.SetLabel("RCM banded direct"); break;
    case irdrop::SolverKind::kDense: state.SetLabel("dense"); break;
  }
}
BENCHMARK(BM_SolveState)
    ->Arg(static_cast<int>(irdrop::SolverKind::kPcgIc))
    ->Arg(static_cast<int>(irdrop::SolverKind::kPcgJacobi))
    ->Arg(static_cast<int>(irdrop::SolverKind::kBandedDirect));

void BM_SingleDieSolve(benchmark::State& state) {
  const auto& b = ddr3();
  const int refine = static_cast<int>(state.range(0));
  const auto die = pdn::build_single_die(b.stack, b.baseline, refine);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(die, b.stack.dram_fp, b.stack.logic_fp, power);
  const auto st = power::parse_memory_state("2a", b.stack.dram_spec, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(st).dram_max_mv);
  }
  state.SetLabel(std::to_string(die.node_count()) + " nodes");
}
BENCHMARK(BM_SingleDieSolve)->Arg(1)->Arg(2)->Arg(3);

// --- Parallel sweep engine -------------------------------------------------
// The multi-threaded series: the same sweep at 1/2/4 workers. Results are
// bitwise identical across the series (the determinism contract); only the
// wall clock moves. On a multi-core host the speedup at 4 workers documents
// the sweep-engine scaling; on a single-core CI box the threads>1 rows mostly
// measure oversubscription and the threads=1 row doubles as the pool-overhead
// baseline (inline path, no workers spawned).

void BM_MonteCarloSweep(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
  irdrop::MonteCarloConfig cfg;
  cfg.samples = 32;
  cfg.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        irdrop::sample_ir_distribution(analyzer, b.stack.dram_spec, cfg).mean_mv);
  }
  state.SetLabel(std::to_string(cfg.threads) + " threads");
}
BENCHMARK(BM_MonteCarloSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_LutBuild(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        irdrop::IrLut::build(analyzer, b.stack.dram_spec, 2, 1.0, threads).worst_case_mv());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_LutBuild)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_PoolDispatchOverhead(benchmark::State& state) {
  // Per-region cost of the single-thread inline path against the same solve
  // loop written as a plain for: the <= 5% single-thread overhead budget.
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
  const auto st = power::parse_memory_state("0-0-0-2", b.stack.dram_spec);
  const bool pooled = state.range(0) != 0;
  exec::ThreadPool pool(1);
  irdrop::EvalContext root(analyzer);
  for (auto _ : state) {
    double sum = 0.0;
    if (pooled) {
      pool.parallel_chunks(8, [&](std::size_t, std::size_t begin, std::size_t end) {
        irdrop::EvalContext ctx = root.fork();
        for (std::size_t i = begin; i < end; ++i) sum += ctx.analyze(st).dram_max_mv;
      });
    } else {
      irdrop::EvalContext ctx = root.fork();
      for (std::size_t i = 0; i < 8; ++i) sum += ctx.analyze(st).dram_max_mv;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(pooled ? "pool(1) inline path" : "plain loop");
}
BENCHMARK(BM_PoolDispatchOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
