// Solver micro-benchmarks (google-benchmark): R-Mesh assembly and DC solve
// cost across mesh refinements and preconditioners. Not a paper table, but
// documents the per-solve cost the LUT construction and co-optimization
// sweeps are built on.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/benchmarks.hpp"
#include "exec/thread_pool.hpp"
#include "irdrop/analysis.hpp"
#include "irdrop/eval_context.hpp"
#include "irdrop/lut.hpp"
#include "irdrop/macromodel.hpp"
#include "irdrop/montecarlo.hpp"
#include "linalg/reorder.hpp"
#include "linalg/schur.hpp"
#include "linalg/sparse_chol.hpp"
#include "pdn/stack_builder.hpp"

namespace {

using namespace pdn3d;

const core::Benchmark& ddr3() {
  static const core::Benchmark b = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  return b;
}

const core::Benchmark& wideio() {
  static const core::Benchmark b = core::make_benchmark(core::BenchmarkKind::kWideIo);
  return b;
}

const char* kind_label(irdrop::SolverKind kind) {
  switch (kind) {
    case irdrop::SolverKind::kMacromodel: return "macromodel";
    case irdrop::SolverKind::kSparseDirect: return "sparse-direct";
    case irdrop::SolverKind::kPcgIc: return "IC-PCG";
    case irdrop::SolverKind::kPcgJacobi: return "Jacobi-PCG";
    case irdrop::SolverKind::kBandedDirect: return "RCM banded direct";
    case irdrop::SolverKind::kDense: return "dense";
  }
  return "?";
}

void BM_BuildStack(benchmark::State& state) {
  const auto& b = ddr3();
  for (auto _ : state) {
    auto built = pdn::build_stack(b.stack, b.baseline);
    benchmark::DoNotOptimize(built.model.node_count());
  }
}
BENCHMARK(BM_BuildStack);

void BM_AnalyzerSetup(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  for (auto _ : state) {
    irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
    benchmark::DoNotOptimize(&analyzer);
  }
}
BENCHMARK(BM_AnalyzerSetup);

void BM_SolveState(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const auto kind = static_cast<irdrop::SolverKind>(state.range(0));
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power, kind);
  const auto st = power::parse_memory_state("0-0-0-2", b.stack.dram_spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(st).dram_max_mv);
  }
  state.SetLabel(kind_label(kind));
}
BENCHMARK(BM_SolveState)
    ->Arg(static_cast<int>(irdrop::SolverKind::kSparseDirect))
    ->Arg(static_cast<int>(irdrop::SolverKind::kPcgIc))
    ->Arg(static_cast<int>(irdrop::SolverKind::kPcgJacobi))
    ->Arg(static_cast<int>(irdrop::SolverKind::kBandedDirect));

// --- Same-matrix/many-RHS fast path ----------------------------------------
// The sparse-direct rung's two cost components, measured separately on the
// Wide I/O-class mesh: the one-time factorization (amortized across a sweep)
// and the per-batch triangular sweeps that replace whole PCG solves.

void BM_FactorOnce(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  const irdrop::IrSolver solver(built.model, irdrop::SolverKind::kPcgIc);
  const linalg::Csr& g = solver.conductance_matrix();
  std::size_t nnz = 0;
  for (auto _ : state) {
    const linalg::SparseCholesky chol(g, linalg::rcm_ordering(g));
    nnz = chol.factor_nnz();
    benchmark::DoNotOptimize(nnz);
  }
  state.SetLabel(std::to_string(g.dimension()) + " nodes, nnz(L)=" + std::to_string(nnz));
}
BENCHMARK(BM_FactorOnce)->Unit(benchmark::kMillisecond);

void BM_TriangularSolveBatch(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  const irdrop::IrSolver solver(built.model, irdrop::SolverKind::kPcgIc);
  const linalg::Csr& g = solver.conductance_matrix();
  const linalg::SparseCholesky chol(g, linalg::rcm_ordering(g));
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::size_t n = g.dimension();
  std::vector<double> rhs(n * count, 0.0);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = 1e-3 * static_cast<double>(i % 17);
  std::vector<double> x(n * count, 0.0);
  std::vector<double> work;
  for (auto _ : state) {
    chol.solve_batch(rhs, x, count, work);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetLabel(std::to_string(count) + " rhs");
}
BENCHMARK(BM_TriangularSolveBatch)->Arg(1)->Arg(8)->Arg(32);

void BM_SingleDieSolve(benchmark::State& state) {
  const auto& b = ddr3();
  const int refine = static_cast<int>(state.range(0));
  const auto die = pdn::build_single_die(b.stack, b.baseline, refine);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(die, b.stack.dram_fp, b.stack.logic_fp, power);
  const auto st = power::parse_memory_state("2a", b.stack.dram_spec, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(st).dram_max_mv);
  }
  state.SetLabel(std::to_string(die.node_count()) + " nodes");
}
BENCHMARK(BM_SingleDieSolve)->Arg(1)->Arg(2)->Arg(3);

// --- Parallel sweep engine + solver fast path ------------------------------
// Two-dimensional series over the Wide I/O-class mesh: worker count (1/2/4)
// x starting solver rung (ic-pcg vs the cached sparse-direct factor). Results
// are bitwise identical across the thread axis (the determinism contract);
// only the wall clock moves. The sparse-direct rows document the many-RHS
// fast path: the factorization is paid once per analyzer and every subsequent
// state solve is two triangular sweeps, which is where the LUT build and
// Monte Carlo sweeps gain over per-solve PCG. On a single-core CI box the
// threads>1 rows mostly measure oversubscription; the threads=1 rows are the
// direct-vs-pcg comparison the perf gate reads.

void BM_MonteCarloSweep(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const auto kind = static_cast<irdrop::SolverKind>(state.range(1));
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power, kind);
  irdrop::MonteCarloConfig cfg;
  cfg.samples = 32;
  cfg.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        irdrop::sample_ir_distribution(analyzer, b.stack.dram_spec, cfg).mean_mv);
  }
  state.SetLabel(std::to_string(cfg.threads) + " threads, " + kind_label(kind));
}
BENCHMARK(BM_MonteCarloSweep)
    ->Args({1, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({2, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({4, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({1, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({2, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({4, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Unit(benchmark::kMillisecond);

void BM_LutBuild(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const auto kind = static_cast<irdrop::SolverKind>(state.range(1));
  irdrop::IrSolverOptions options;
  if (kind == irdrop::SolverKind::kMacromodel) {
    options.macromodel = std::make_shared<irdrop::MacromodelContext>();
  }
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power, kind,
                                    options);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        irdrop::IrLut::build(analyzer, b.stack.dram_spec, 2, 1.0, threads).worst_case_mv());
  }
  state.SetLabel(std::to_string(threads) + " threads, " + kind_label(kind));
}
BENCHMARK(BM_LutBuild)
    ->Args({1, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({2, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({4, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({1, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({2, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({4, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({1, static_cast<int>(irdrop::SolverKind::kMacromodel)})
    ->Unit(benchmark::kMillisecond);

void BM_PoolDispatchOverhead(benchmark::State& state) {
  // Per-region cost of the single-thread inline path against the same solve
  // loop written as a plain for: the <= 5% single-thread overhead budget.
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
  const auto st = power::parse_memory_state("0-0-0-2", b.stack.dram_spec);
  const bool pooled = state.range(0) != 0;
  exec::ThreadPool pool(1);
  irdrop::EvalContext root(analyzer);
  for (auto _ : state) {
    double sum = 0.0;
    if (pooled) {
      pool.parallel_chunks(8, [&](std::size_t, std::size_t begin, std::size_t end) {
        irdrop::EvalContext ctx = root.fork();
        for (std::size_t i = begin; i < end; ++i) sum += ctx.analyze(st).dram_max_mv;
      });
    } else {
      irdrop::EvalContext ctx = root.fork();
      for (std::size_t i = 0; i < 8; ++i) sum += ctx.analyze(st).dram_max_mv;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(pooled ? "pool(1) inline path" : "plain loop");
}
BENCHMARK(BM_PoolDispatchOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --- Hierarchical (Schur macromodel) tier ----------------------------------
// The PR 9 rung: per-die interior elimination shared through a fingerprint-
// keyed block cache, a small reduced interface factor, and Woodbury overlays
// for small design deltas. BM_MacromodelBuild prices the two build regimes
// (cold vs warm die cache), BM_ReducedSolve the steady-state per-RHS cost,
// and BM_CoOptSweep the headline sweep-level comparison against the PR 4
// sparse-direct path.

void BM_MacromodelBuild(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  const irdrop::IrSolver probe(built.model, irdrop::SolverKind::kPcgIc);
  const linalg::Csr& g = probe.conductance_matrix();
  const auto block_of = irdrop::stack_partition(built.model);
  const linalg::SchurOptions schur_opts;
  const bool warm = state.range(0) != 0;
  linalg::SchurBlockCache shared;
  if (warm) {
    // Pre-populate the die cache: the warm row measures fingerprint lookups
    // plus the reduced-system factor only -- the cost a sweep neighbor pays.
    const linalg::SchurMacromodel prime(g, block_of, schur_opts, &shared);
    benchmark::DoNotOptimize(prime.dimension());
  }
  std::size_t interfaces = 0;
  for (auto _ : state) {
    if (warm) {
      const linalg::SchurMacromodel mm(g, block_of, schur_opts, &shared);
      interfaces = mm.interface_count();
    } else {
      linalg::SchurBlockCache cold;
      const linalg::SchurMacromodel mm(g, block_of, schur_opts, &cold);
      interfaces = mm.interface_count();
    }
    benchmark::DoNotOptimize(interfaces);
  }
  state.SetLabel(std::string(warm ? "warm die cache, " : "cold cache, ") +
                 std::to_string(g.dimension()) + " nodes, " + std::to_string(interfaces) +
                 " interface");
}
BENCHMARK(BM_MacromodelBuild)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ReducedSolve(benchmark::State& state) {
  // Steady-state per-RHS cost of the macromodel: per-block triangular pairs,
  // the reduced interface solve, and back-substitution. Residual-checked
  // against the true matrix off the clock -- the tier's contract is that its
  // answers survive the same verification as every other rung.
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  const irdrop::IrSolver probe(built.model, irdrop::SolverKind::kPcgIc);
  const linalg::Csr& g = probe.conductance_matrix();
  const auto block_of = irdrop::stack_partition(built.model);
  linalg::SchurBlockCache cache;
  const linalg::SchurMacromodel mm(g, block_of, linalg::SchurOptions{}, &cache);
  const std::size_t n = g.dimension();
  std::vector<double> rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = 1e-3 * static_cast<double>(i % 13);
  std::vector<double> x(n, 0.0);
  linalg::SchurScratch scratch;
  for (auto _ : state) {
    mm.solve(rhs, x, scratch);
    benchmark::DoNotOptimize(x.data());
  }
  std::vector<double> ax(n, 0.0);
  g.multiply(x, ax);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (rhs[i] - ax[i]) * (rhs[i] - ax[i]);
    den += rhs[i] * rhs[i];
  }
  const double rel = std::sqrt(num / den);
  if (!(rel < 1e-7)) {
    state.SkipWithError(("macromodel residual " + std::to_string(rel)).c_str());
    return;
  }
  state.SetLabel(std::to_string(n) + " nodes, " + std::to_string(mm.interface_count()) +
                 " interface, rel residual " + std::to_string(rel));
}
BENCHMARK(BM_ReducedSolve);

void BM_CoOptSweep(benchmark::State& state) {
  // The headline tier series: a TSV/C4 resistance-variation sweep over the
  // Wide I/O stack -- 24 design points differing from the anchor by two
  // interface resistors each, i.e. a sweep where 100% of points share die
  // macromodels. Arg 0 solves every point on the PR 4 sparse-direct path
  // (fresh factorization per point); Arg 1 rides the hierarchical tier
  // (anchored macromodel + Woodbury overlays) and then re-measures its
  // winning point on sparse-direct, so both arms emit byte-identical sweep
  // output (winner index + sparse-direct winner value). The verification
  // pass below runs off the clock and fails the benchmark on any mismatch.
  const auto& b = wideio();
  const auto base = pdn::build_stack(b.stack, b.baseline);
  std::vector<std::size_t> iface;
  {
    const auto rs = base.model.resistors();
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i].kind == pdn::ElementKind::kTsv || rs[i].kind == pdn::ElementKind::kC4) {
        iface.push_back(i);
      }
    }
  }
  constexpr std::size_t kPoints = 24;
  std::vector<pdn::StackModel> variants;
  variants.reserve(kPoints);
  for (std::size_t p = 0; p < kPoints; ++p) {
    pdn::StackModel m = base.model;
    const double scale = 0.85 + 0.03 * static_cast<double>(p % 11);
    for (std::size_t k = 0; k < 2; ++k) {
      const std::size_t idx = iface[(2 * p + k) % iface.size()];
      m.perturb_resistor(idx, base.model.resistors()[idx].ohms * scale);
    }
    variants.push_back(std::move(m));
  }
  const std::size_t n = base.model.node_count();
  std::vector<double> sinks(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) sinks[i] = 1e-4 * static_cast<double>(i % 7);

  const bool tier = state.range(0) != 0;
  irdrop::IrSolverOptions tier_opts;
  tier_opts.macromodel = std::make_shared<irdrop::MacromodelContext>();
  // Anchor the context on the unperturbed design, as Platform::prepare_sweep
  // does before a sweep's workers start.
  const irdrop::IrSolver anchor(base.model, irdrop::SolverKind::kMacromodel, tier_opts);
  if (!anchor.macromodel_available()) {
    state.SkipWithError("macromodel rung declined the wide-io stack");
    return;
  }
  tier_opts.macromodel->register_base(anchor.macromodel_base());

  struct SweepResult {
    std::size_t winner = 0;
    double winner_mv = 0.0;       ///< always a sparse-direct measurement
    std::size_t macro_points = 0; ///< points served by the macromodel rung
  };
  const auto measure = [&](const pdn::StackModel& m, irdrop::SolverKind kind,
                           const irdrop::IrSolverOptions& opts, irdrop::SolverKind* used) {
    const irdrop::IrSolver solver(m, kind, opts);
    const auto out = solver.solve({.sinks = sinks, .want_ir = true});
    if (!out.ok()) throw std::runtime_error("sweep point solve failed");
    if (used != nullptr) *used = out.kind_used;
    return *std::max_element(out.x.begin(), out.x.end());
  };
  const auto sweep = [&](bool use_tier) {
    SweepResult r;
    double best = -1.0;
    for (std::size_t p = 0; p < kPoints; ++p) {
      irdrop::SolverKind used = irdrop::SolverKind::kPcgIc;
      const double drop =
          measure(variants[p], use_tier ? irdrop::SolverKind::kMacromodel
                                        : irdrop::SolverKind::kSparseDirect,
                  use_tier ? tier_opts : irdrop::IrSolverOptions{}, &used);
      if (used == irdrop::SolverKind::kMacromodel) ++r.macro_points;
      if (drop > best) {
        best = drop;
        r.winner = p;
      }
    }
    // The sweep's reported value is always the sparse-direct measurement of
    // the winner: on the tier arm this one extra factorization is what makes
    // the output byte-identical to the tier-disabled sweep.
    r.winner_mv = use_tier ? measure(variants[r.winner], irdrop::SolverKind::kSparseDirect,
                                     irdrop::IrSolverOptions{}, nullptr)
                           : best;
    return r;
  };

  for (auto _ : state) {
    const SweepResult r = sweep(tier);
    benchmark::DoNotOptimize(r.winner_mv);
  }

  // Off the clock: the tier arm's output must match the reference arm's,
  // index and bytes, and >90% of its points must have ridden the tier.
  const SweepResult got = sweep(tier);
  const SweepResult ref = sweep(false);
  if (got.winner != ref.winner || got.winner_mv != ref.winner_mv) {
    state.SkipWithError("tier sweep output diverged from sparse-direct sweep");
    return;
  }
  if (tier && got.macro_points * 10 < kPoints * 9) {
    state.SkipWithError("macromodel share below 90%");
    return;
  }
  state.SetLabel(std::string(tier ? "hierarchical tier" : "sparse-direct per point") + ", " +
                 std::to_string(kPoints) + " points, " + std::to_string(got.macro_points) +
                 " on macromodel");
}
BENCHMARK(BM_CoOptSweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
