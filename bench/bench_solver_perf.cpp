// Solver micro-benchmarks (google-benchmark): R-Mesh assembly and DC solve
// cost across mesh refinements and preconditioners. Not a paper table, but
// documents the per-solve cost the LUT construction and co-optimization
// sweeps are built on.

#include <benchmark/benchmark.h>

#include "core/benchmarks.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"

namespace {

using namespace pdn3d;

const core::Benchmark& ddr3() {
  static const core::Benchmark b = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  return b;
}

void BM_BuildStack(benchmark::State& state) {
  const auto& b = ddr3();
  for (auto _ : state) {
    auto built = pdn::build_stack(b.stack, b.baseline);
    benchmark::DoNotOptimize(built.model.node_count());
  }
}
BENCHMARK(BM_BuildStack);

void BM_AnalyzerSetup(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  for (auto _ : state) {
    irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
    benchmark::DoNotOptimize(&analyzer);
  }
}
BENCHMARK(BM_AnalyzerSetup);

void BM_SolveState(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const auto kind = static_cast<irdrop::SolverKind>(state.range(0));
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power, kind);
  const auto st = power::parse_memory_state("0-0-0-2", b.stack.dram_spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(st).dram_max_mv);
  }
  switch (kind) {
    case irdrop::SolverKind::kPcgIc: state.SetLabel("IC-PCG"); break;
    case irdrop::SolverKind::kPcgJacobi: state.SetLabel("Jacobi-PCG"); break;
    case irdrop::SolverKind::kBandedDirect: state.SetLabel("RCM banded direct"); break;
    case irdrop::SolverKind::kDense: state.SetLabel("dense"); break;
  }
}
BENCHMARK(BM_SolveState)
    ->Arg(static_cast<int>(irdrop::SolverKind::kPcgIc))
    ->Arg(static_cast<int>(irdrop::SolverKind::kPcgJacobi))
    ->Arg(static_cast<int>(irdrop::SolverKind::kBandedDirect));

void BM_SingleDieSolve(benchmark::State& state) {
  const auto& b = ddr3();
  const int refine = static_cast<int>(state.range(0));
  const auto die = pdn::build_single_die(b.stack, b.baseline, refine);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(die, b.stack.dram_fp, b.stack.logic_fp, power);
  const auto st = power::parse_memory_state("2a", b.stack.dram_spec, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(st).dram_max_mv);
  }
  state.SetLabel(std::to_string(die.node_count()) + " nodes");
}
BENCHMARK(BM_SingleDieSolve)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
