// Solver micro-benchmarks (google-benchmark): R-Mesh assembly and DC solve
// cost across mesh refinements and preconditioners. Not a paper table, but
// documents the per-solve cost the LUT construction and co-optimization
// sweeps are built on.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/benchmarks.hpp"
#include "exec/thread_pool.hpp"
#include "irdrop/analysis.hpp"
#include "irdrop/eval_context.hpp"
#include "irdrop/lut.hpp"
#include "irdrop/montecarlo.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sparse_chol.hpp"
#include "pdn/stack_builder.hpp"

namespace {

using namespace pdn3d;

const core::Benchmark& ddr3() {
  static const core::Benchmark b = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  return b;
}

const core::Benchmark& wideio() {
  static const core::Benchmark b = core::make_benchmark(core::BenchmarkKind::kWideIo);
  return b;
}

const char* kind_label(irdrop::SolverKind kind) {
  switch (kind) {
    case irdrop::SolverKind::kSparseDirect: return "sparse-direct";
    case irdrop::SolverKind::kPcgIc: return "IC-PCG";
    case irdrop::SolverKind::kPcgJacobi: return "Jacobi-PCG";
    case irdrop::SolverKind::kBandedDirect: return "RCM banded direct";
    case irdrop::SolverKind::kDense: return "dense";
  }
  return "?";
}

void BM_BuildStack(benchmark::State& state) {
  const auto& b = ddr3();
  for (auto _ : state) {
    auto built = pdn::build_stack(b.stack, b.baseline);
    benchmark::DoNotOptimize(built.model.node_count());
  }
}
BENCHMARK(BM_BuildStack);

void BM_AnalyzerSetup(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  for (auto _ : state) {
    irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
    benchmark::DoNotOptimize(&analyzer);
  }
}
BENCHMARK(BM_AnalyzerSetup);

void BM_SolveState(benchmark::State& state) {
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const auto kind = static_cast<irdrop::SolverKind>(state.range(0));
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power, kind);
  const auto st = power::parse_memory_state("0-0-0-2", b.stack.dram_spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(st).dram_max_mv);
  }
  state.SetLabel(kind_label(kind));
}
BENCHMARK(BM_SolveState)
    ->Arg(static_cast<int>(irdrop::SolverKind::kSparseDirect))
    ->Arg(static_cast<int>(irdrop::SolverKind::kPcgIc))
    ->Arg(static_cast<int>(irdrop::SolverKind::kPcgJacobi))
    ->Arg(static_cast<int>(irdrop::SolverKind::kBandedDirect));

// --- Same-matrix/many-RHS fast path ----------------------------------------
// The sparse-direct rung's two cost components, measured separately on the
// Wide I/O-class mesh: the one-time factorization (amortized across a sweep)
// and the per-batch triangular sweeps that replace whole PCG solves.

void BM_FactorOnce(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  const irdrop::IrSolver solver(built.model, irdrop::SolverKind::kPcgIc);
  const linalg::Csr& g = solver.conductance_matrix();
  std::size_t nnz = 0;
  for (auto _ : state) {
    const linalg::SparseCholesky chol(g, linalg::rcm_ordering(g));
    nnz = chol.factor_nnz();
    benchmark::DoNotOptimize(nnz);
  }
  state.SetLabel(std::to_string(g.dimension()) + " nodes, nnz(L)=" + std::to_string(nnz));
}
BENCHMARK(BM_FactorOnce)->Unit(benchmark::kMillisecond);

void BM_TriangularSolveBatch(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  const irdrop::IrSolver solver(built.model, irdrop::SolverKind::kPcgIc);
  const linalg::Csr& g = solver.conductance_matrix();
  const linalg::SparseCholesky chol(g, linalg::rcm_ordering(g));
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::size_t n = g.dimension();
  std::vector<double> rhs(n * count, 0.0);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = 1e-3 * static_cast<double>(i % 17);
  std::vector<double> x(n * count, 0.0);
  std::vector<double> work;
  for (auto _ : state) {
    chol.solve_batch(rhs, x, count, work);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetLabel(std::to_string(count) + " rhs");
}
BENCHMARK(BM_TriangularSolveBatch)->Arg(1)->Arg(8)->Arg(32);

void BM_SingleDieSolve(benchmark::State& state) {
  const auto& b = ddr3();
  const int refine = static_cast<int>(state.range(0));
  const auto die = pdn::build_single_die(b.stack, b.baseline, refine);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(die, b.stack.dram_fp, b.stack.logic_fp, power);
  const auto st = power::parse_memory_state("2a", b.stack.dram_spec, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(st).dram_max_mv);
  }
  state.SetLabel(std::to_string(die.node_count()) + " nodes");
}
BENCHMARK(BM_SingleDieSolve)->Arg(1)->Arg(2)->Arg(3);

// --- Parallel sweep engine + solver fast path ------------------------------
// Two-dimensional series over the Wide I/O-class mesh: worker count (1/2/4)
// x starting solver rung (ic-pcg vs the cached sparse-direct factor). Results
// are bitwise identical across the thread axis (the determinism contract);
// only the wall clock moves. The sparse-direct rows document the many-RHS
// fast path: the factorization is paid once per analyzer and every subsequent
// state solve is two triangular sweeps, which is where the LUT build and
// Monte Carlo sweeps gain over per-solve PCG. On a single-core CI box the
// threads>1 rows mostly measure oversubscription; the threads=1 rows are the
// direct-vs-pcg comparison the perf gate reads.

void BM_MonteCarloSweep(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const auto kind = static_cast<irdrop::SolverKind>(state.range(1));
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power, kind);
  irdrop::MonteCarloConfig cfg;
  cfg.samples = 32;
  cfg.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        irdrop::sample_ir_distribution(analyzer, b.stack.dram_spec, cfg).mean_mv);
  }
  state.SetLabel(std::to_string(cfg.threads) + " threads, " + kind_label(kind));
}
BENCHMARK(BM_MonteCarloSweep)
    ->Args({1, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({2, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({4, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({1, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({2, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({4, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Unit(benchmark::kMillisecond);

void BM_LutBuild(benchmark::State& state) {
  const auto& b = wideio();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const auto kind = static_cast<irdrop::SolverKind>(state.range(1));
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power, kind);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        irdrop::IrLut::build(analyzer, b.stack.dram_spec, 2, 1.0, threads).worst_case_mv());
  }
  state.SetLabel(std::to_string(threads) + " threads, " + kind_label(kind));
}
BENCHMARK(BM_LutBuild)
    ->Args({1, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({2, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({4, static_cast<int>(irdrop::SolverKind::kPcgIc)})
    ->Args({1, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({2, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Args({4, static_cast<int>(irdrop::SolverKind::kSparseDirect)})
    ->Unit(benchmark::kMillisecond);

void BM_PoolDispatchOverhead(benchmark::State& state) {
  // Per-region cost of the single-thread inline path against the same solve
  // loop written as a plain for: the <= 5% single-thread overhead budget.
  const auto& b = ddr3();
  const auto built = pdn::build_stack(b.stack, b.baseline);
  irdrop::PowerBinding power;
  power.dram = b.dram_power;
  power.logic = b.logic_power;
  const irdrop::IrAnalyzer analyzer(built.model, b.stack.dram_fp, b.stack.logic_fp, power);
  const auto st = power::parse_memory_state("0-0-0-2", b.stack.dram_spec);
  const bool pooled = state.range(0) != 0;
  exec::ThreadPool pool(1);
  irdrop::EvalContext root(analyzer);
  for (auto _ : state) {
    double sum = 0.0;
    if (pooled) {
      pool.parallel_chunks(8, [&](std::size_t, std::size_t begin, std::size_t end) {
        irdrop::EvalContext ctx = root.fork();
        for (std::size_t i = begin; i < end; ++i) sum += ctx.analyze(st).dram_max_mv;
      });
    } else {
      irdrop::EvalContext ctx = root.fork();
      for (std::size_t i = 0; i < 8; ++i) sum += ctx.analyze(st).dram_max_mv;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(pooled ? "pool(1) inline path" : "plain loop");
}
BENCHMARK(BM_PoolDispatchOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
