// Extension bench: IR-drop distribution under random operation. The paper
// designs against the worst-case memory state; the Monte Carlo sampler shows
// how much margin that worst case carries over typical random states, and
// how the margin moves with the paper's packaging options.

#include <iostream>

#include "bench_util.hpp"
#include "core/benchmarks.hpp"
#include "irdrop/montecarlo.hpp"
#include "pdn/stack_builder.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Extension: Monte Carlo IR distribution",
                      "off-chip stacked DDR3, 200 random states per design");

  const auto bench_cfg = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  irdrop::PowerBinding power;
  power.dram = bench_cfg.dram_power;
  power.logic = bench_cfg.logic_power;

  util::Table t({"design", "p50 (mV)", "p95 (mV)", "p99 (mV)", "sampled max", "worst case",
                 "p99/worst"});
  const auto run = [&](const char* label, pdn::PdnConfig cfg) {
    const auto built = pdn::build_stack(bench_cfg.stack, cfg);
    const irdrop::IrAnalyzer analyzer(built.model, bench_cfg.stack.dram_fp,
                                      bench_cfg.stack.logic_fp, power,
                                      irdrop::SolverKind::kBandedDirect);
    irdrop::MonteCarloConfig mc;
    mc.samples = 200;
    const auto r = irdrop::sample_ir_distribution(analyzer, bench_cfg.stack.dram_spec, mc);
    const auto worst_state =
        power::parse_memory_state("0-0-0-2", bench_cfg.stack.dram_spec, 1.0);
    const double worst = analyzer.analyze(worst_state).dram_max_mv;
    t.add_row({label, util::fmt_fixed(r.p50_mv, 2), util::fmt_fixed(r.p95_mv, 2),
               util::fmt_fixed(r.p99_mv, 2), util::fmt_fixed(r.max_mv, 2),
               util::fmt_fixed(worst, 2), util::fmt_fixed(r.p99_mv / worst, 2)});
  };

  run("baseline (F2B)", bench_cfg.baseline);
  {
    auto f2f = bench_cfg.baseline;
    f2f.bonding = pdn::BondingStyle::kF2F;
    run("F2F+B2B", f2f);
  }
  {
    auto wb = bench_cfg.baseline;
    wb.wire_bonding = true;
    run("F2B + wire bonds", wb);
  }

  std::cout << t.render();
  std::cout << "The worst-case design point upper-bounds random operation; F2F compresses\n"
            << "the distribution hardest because PDN sharing favors exactly the scattered\n"
            << "states random operation produces.\n\n";
  return 0;
}
