// Ablation (beyond-paper extension): transient droop vs decap placement.
// The paper notes that backside bond wires "can directly connect to large
// off-chip decoupling capacitors, which provide better AC power integrity".
// The RC extension quantifies that: wire bonding adds supply taps, and decap
// at those taps flattens the droop transient.

#include <iostream>

#include "bench_util.hpp"
#include "core/benchmarks.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"
#include "transient/decap.hpp"
#include "transient/simulator.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Ablation: decap and wire bonding (transient extension)",
                      "off-chip stacked DDR3, step to state 0-0-0-2, 400 ns window");

  const auto bench_cfg = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  irdrop::PowerBinding power;
  power.dram = bench_cfg.dram_power;
  power.logic = bench_cfg.logic_power;

  util::Table t({"design", "tap decap (nF)", "DC IR (mV)", "droop @2ns (mV)", "droop @10ns (mV)",
                 "settle (ns)"});
  const auto run = [&](const std::string& label, bool wire_bonding, double tap_nf) {
    auto cfg = bench_cfg.baseline;
    cfg.wire_bonding = wire_bonding;
    const auto built = pdn::build_stack(bench_cfg.stack, cfg);
    const irdrop::IrAnalyzer analyzer(built.model, bench_cfg.stack.dram_fp,
                                      bench_cfg.stack.logic_fp, power);
    const auto state = power::parse_memory_state("0-0-0-2", bench_cfg.stack.dram_spec);
    const auto sinks = analyzer.injection(state);

    transient::DecapConfig decap;
    decap.tap_decap_nf = tap_nf;
    const transient::TransientSimulator sim(
        built.model, transient::assign_node_capacitance(built.model, decap), 1e-9);
    const auto r = sim.step_response(sinks, 400e-9);
    t.add_row({label, util::fmt_fixed(tap_nf, 1), util::fmt_fixed(r.dc_ir_mv, 2),
               util::fmt_fixed(r.worst_ir_mv[2], 2), util::fmt_fixed(r.worst_ir_mv[10], 2),
               util::fmt_fixed(r.settle_ns, 0)});
  };

  run("F2B, no wire bonds", false, 0.0);
  run("F2B, no wire bonds", false, 2.0);
  run("F2B + wire bonds", true, 0.0);
  run("F2B + wire bonds", true, 2.0);
  run("F2B + wire bonds", true, 20.0);
  run("F2B + wire bonds", true, 100.0);

  std::cout << t.render();
  std::cout << "Wire bonding lowers the DC floor; decap at the (many) wire-bond taps also\n"
            << "slows the droop, buying time for the regulation loop -- the AC benefit the\n"
            << "paper attributes to bond wires reaching off-chip capacitors.\n\n";
  return 0;
}
