// Ablation: the two controller design choices DESIGN.md calls out.
//  1. Isolated-projection admission: without it, a LUT policy admits states
//     that later exceed the constraint when other dies close their banks.
//  2. Queue scan (out-of-order) vs head-of-line service for the baseline.

#include <iostream>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Ablation: controller choices",
                      "off-chip stacked DDR3, 10k reads, 24 mV constraint");

  core::Platform p(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  const auto cfg = p.benchmark().baseline;

  util::Table t({"variant", "runtime (us)", "bandwidth", "max IR (mV)", "meets 24 mV?"});
  const auto run = [&](const std::string& label, memctrl::PolicyConfig pc) {
    const auto r = p.simulate(cfg, pc);
    t.add_row({label, r.feasible ? util::fmt_fixed(r.runtime_us, 2) : "infeasible",
               util::fmt_fixed(r.bandwidth_reads_per_clk, 3), util::fmt_fixed(r.max_ir_mv, 2),
               r.max_ir_mv <= 24.0 + 1e-9 ? "yes" : "NO"});
  };

  auto aware = memctrl::ir_aware_policy(24.0, memctrl::SchedulingKind::kDistR);
  run("IR-aware DistR, isolation check ON", aware);
  aware.isolation_check = false;
  run("IR-aware DistR, isolation check OFF", aware);

  auto std_in = memctrl::standard_policy();
  run("standard, head-of-line activations", std_in);
  std_in.out_of_order = true;
  run("standard, full-queue activations", std_in);

  std::cout << t.render();
  std::cout << "Without the isolation check the policy can visit states above its own\n"
            << "constraint (bank closures on other dies raise the survivors' activity);\n"
            << "with it, the constraint is honored at a small performance cost.\n\n";
  return 0;
}
