// Table 1: benchmark specifications -- dumps the configured benchmarks and
// checks they match the published specs.

#include <iostream>

#include "bench_util.hpp"
#include "core/benchmarks.hpp"

int main() {
  using namespace pdn3d;
  bench::print_header("Table 1", "Benchmark specifications (stacked DDR3, Wide I/O, HMC)");

  util::Table t({"Benchmark", "DRAM size (mm)", "Logic size (mm)", "# banks/die", "# channels",
                 "# dies", "VDD (V)", "tCK (ns)", "Mounting"});
  for (const auto& b : core::all_benchmarks()) {
    t.add_row({
        b.name,
        util::fmt_fixed(b.stack.dram_fp.width(), 1) + "x" +
            util::fmt_fixed(b.stack.dram_fp.height(), 1),
        util::fmt_fixed(b.stack.logic_fp.width(), 1) + "x" +
            util::fmt_fixed(b.stack.logic_fp.height(), 1),
        std::to_string(b.stack.dram_fp.bank_count()),
        std::to_string(b.sim.channels),
        std::to_string(b.stack.num_dram_dies),
        util::fmt_fixed(b.stack.tech.dram.vdd, 1),
        util::fmt_fixed(b.sim.timing.tck_ns, 2),
        pdn::to_string(b.baseline.mounting),
    });
  }
  std::cout << t.render() << "\n";
  return 0;
}
