#!/usr/bin/env python3
"""Soak + throughput benchmark for `pdn3d serve` (bench/BENCH_service.json).

Three measurements, stdlib-only:

1. **Parity.** A set of evaluation requests is run through the one-shot CLI
   (at --threads 1 and --threads 8) and through a served session; the served
   `output` field must be byte-identical to the CLI's stdout in every case.
2. **Soak.** `pdn3d serve --socket` under N concurrent Unix-socket clients
   for the soak duration. Every submitted request must be answered exactly
   once: completed + backpressured (queue_full) == submitted, zero dropped.
3. **Throughput.** Served requests/second over the soak vs a cold-CLI
   baseline (fresh `pdn3d analyze wide-io` process per request). Serving
   amortizes process start, platform build, and solver factorization across
   requests, which is where the speedup comes from.
4. **Telemetry.** Every request carries a client request_id and every
   response must echo one. A scraper thread polls the `stats` / `metrics`
   ops mid-soak and must observe a live queue: non-zero queue_depth and
   in_flight with non-zero service.run_ms p50/p95/p99. A final `stats`
   scrape lands in the output JSON.
5. **Cache soak.** A warm pass replays a shared 32-point sweep with
   `cache: refresh` (fresh solves, outputs recorded), then N clients replay
   the same sweep with the default cache mode. Every response's `output`
   must be byte-identical to the warm pass (request_id aside), the mid-soak
   stats scrape must show non-zero `cache.hits` with
   `pdn3d_service_cache_hits` present in the metrics body, and the cached
   replay must sustain >= 5x the (cache-bypassed) soak throughput.

Usage: bench_service.py /path/to/pdn3d [--duration 60] [--clients 4]
                        [--out bench/BENCH_service.json]
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

PARITY_CASES = [
    {
        "cli": ["analyze", "wide-io"],
        "req": {"op": "evaluate", "benchmark": "wide-io"},
    },
    {
        "cli": ["analyze", "wide-io", "--m2", "15", "--tl", "d"],
        "req": {"op": "evaluate", "benchmark": "wide-io",
                "design": {"m2": 15, "tl": "d"}},
    },
    {
        "cli": ["validate", "wide-io"],
        "req": {"op": "validate", "benchmark": "wide-io"},
    },
    {
        "cli": ["em-check", "wide-io", "--em-temp", "100"],
        "req": {"op": "em-check", "benchmark": "wide-io",
                "design": {"em-temp": 100}},
    },
]

# The soak's request mix: repeated designs so the session caches amortize,
# exactly like a sweep driver hammering the service would behave. Evaluates
# carry cache:"bypass" so the soak keeps measuring full solves -- the result
# cache gets its own series below, and the baseline stays comparable to the
# pre-cache numbers in bench/BENCH_service.json.
SOAK_REQUESTS = [
    {"op": "evaluate", "benchmark": "wide-io", "cache": "bypass"},
    {"op": "evaluate", "benchmark": "wide-io", "cache": "bypass",
     "design": {"m2": 15, "tl": "d"}},
    {"op": "evaluate", "benchmark": "wide-io", "cache": "bypass",
     "design": {"bd": "f2f"}},
    {"op": "validate", "benchmark": "wide-io"},
    {"op": "em-check", "benchmark": "wide-io", "cache": "bypass"},
]

# The cache soak's shared sweep: 4 designs x 8 memory states = 32 points,
# the shape of a sweep driver fanned out over identical worker replicas.
CACHE_SWEEP = [
    {"op": "evaluate", "benchmark": "wide-io",
     "design": {"m2": m2}, "state": state}
    for m2 in (10, 20, 30, 40)
    for state in ("0-0-0-2", "0-0-2-0", "0-2-0-0", "2-0-0-0",
                  "0-0-0-1", "0-0-1-0", "0-1-0-0", "1-0-0-0")
]


def run_cli(binary, args):
    proc = subprocess.run([binary] + args, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, check=False)
    if proc.returncode != 0:
        raise RuntimeError(f"cli {args} failed: {proc.stderr}")
    return proc.stdout


def start_server(binary, sock_path, report_path):
    proc = subprocess.Popen(
        [binary, "serve", "--socket", sock_path, "--queue", "64",
         "--report", report_path],
        stdin=subprocess.DEVNULL, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    deadline = time.time() + 30
    while not os.path.exists(sock_path):
        if proc.poll() is not None or time.time() > deadline:
            raise RuntimeError(f"server did not come up: {proc.stderr.read()}")
        time.sleep(0.05)
    return proc


def stop_server(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise RuntimeError("server did not drain on SIGTERM")


def request_line(req_id, payload, request_id=None):
    body = dict(payload)
    body["id"] = req_id
    if request_id is not None:
        body["request_id"] = request_id
    return (json.dumps(body) + "\n").encode()


def connect(sock_path):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(sock_path)
    return sock


def roundtrip(sock, rfile, req_id, payload, request_id=None):
    sock.sendall(request_line(req_id, payload, request_id))
    line = rfile.readline()
    if not line:
        raise RuntimeError("server closed the connection")
    resp = json.loads(line)
    # Every response carries a correlation id; client-supplied ids echo back.
    if request_id is not None and resp.get("request_id") != request_id:
        raise RuntimeError(
            f"request_id not echoed: sent {request_id!r}, got {resp!r}")
    if "request_id" not in resp:
        raise RuntimeError(f"response lacks request_id: {resp}")
    return resp


def parity_check(binary, sock_path):
    """CLI output at --threads 1 and 8 vs the served output field, per case."""
    results = []
    with connect(sock_path) as sock:
        rfile = sock.makefile("r")
        for i, case in enumerate(PARITY_CASES):
            served = roundtrip(sock, rfile, 1000 + i, case["req"],
                               request_id=f"parity-{i}")
            if not served.get("ok"):
                raise RuntimeError(f"served request failed: {served}")
            for threads in (1, 8):
                cli_out = run_cli(binary, case["cli"] + ["--threads", str(threads)])
                results.append({
                    "case": " ".join(case["cli"]),
                    "cli_threads": threads,
                    "byte_identical": cli_out == served["output"],
                })
    bad = [r for r in results if not r["byte_identical"]]
    if bad:
        raise RuntimeError(f"parity violations: {bad}")
    return results


def scrape_stats(sock_path, request_id="scrape"):
    """One stats + metrics round trip on a fresh connection."""
    with connect(sock_path) as sock:
        rfile = sock.makefile("r")
        stats = roundtrip(sock, rfile, 0, {"op": "stats"},
                          request_id=f"{request_id}-stats")
        metrics = roundtrip(sock, rfile, 1, {"op": "metrics"},
                            request_id=f"{request_id}-metrics")
    if not stats.get("ok") or not metrics.get("ok"):
        raise RuntimeError(f"scrape failed: {stats} / {metrics}")
    if "pdn3d_service_requests" not in metrics.get("body", ""):
        raise RuntimeError("metrics body lacks pdn3d_service_requests")
    return stats


def live_scrape_ok(stats):
    """The mid-soak liveness bar: work visibly queued, running, and timed."""
    run_ms = stats.get("windows", {}).get("service.run_ms", {})
    return (stats.get("queue_depth", 0) > 0
            and stats.get("in_flight", 0) > 0
            and all(run_ms.get(q, 0) > 0 for q in ("p50", "p95", "p99")))


def soak(sock_path, clients, duration):
    """N clients hammer the service; count every response by kind. A scraper
    thread polls the stats/metrics ops mid-run and must observe a live queue
    (non-zero depth + in-flight) with non-zero run_ms quantiles."""
    stop_at = time.time() + duration
    lock = threading.Lock()
    totals = {"submitted": 0, "ok": 0, "queue_full": 0, "other_error": 0}
    errors = []
    scrape = {"attempts": 0, "live": False, "last": None, "live_snapshot": None}

    def scraper_loop():
        n = 0
        while time.time() < stop_at - 1.0:
            time.sleep(2.0)
            n += 1
            try:
                stats = scrape_stats(sock_path, request_id=f"scrape-{n}")
            except Exception as exc:  # noqa: BLE001 - surfaced in main
                errors.append({"scraper": n, "exception": repr(exc)})
                return
            with lock:
                scrape["attempts"] = n
                scrape["last"] = stats
                if live_scrape_ok(stats):
                    scrape["live"] = True
                    scrape["live_snapshot"] = stats

    def client_loop(client_idx):
        next_id = client_idx * 1_000_000
        try:
            with connect(sock_path) as sock:
                rfile = sock.makefile("r")
                while time.time() < stop_at:
                    payload = SOAK_REQUESTS[next_id % len(SOAK_REQUESTS)]
                    resp = roundtrip(sock, rfile, next_id, payload,
                                     request_id=f"soak-{client_idx}-{next_id}")
                    next_id += 1
                    with lock:
                        totals["submitted"] += 1
                        if resp.get("ok"):
                            totals["ok"] += 1
                        elif resp.get("error", {}).get("kind") == "queue_full":
                            totals["queue_full"] += 1
                        else:
                            totals["other_error"] += 1
                            errors.append(resp)
        except Exception as exc:  # noqa: BLE001 - surfaced in main
            errors.append({"client": client_idx, "exception": repr(exc)})

    threads = [threading.Thread(target=client_loop, args=(c,))
               for c in range(clients)]
    threads.append(threading.Thread(target=scraper_loop))
    started = time.time()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.time() - started
    if errors:
        raise RuntimeError(f"soak errors: {errors[:5]}")
    if totals["ok"] + totals["queue_full"] != totals["submitted"]:
        raise RuntimeError(f"dropped responses: {totals}")
    if not scrape["live"]:
        raise RuntimeError(
            "mid-soak stats scrape never observed a live queue "
            f"(attempts={scrape['attempts']}, last={scrape['last']})")
    totals["elapsed_s"] = round(elapsed, 3)
    totals["requests_per_s"] = round(totals["ok"] / elapsed, 3)
    totals["stats_scrapes"] = scrape["attempts"]
    # Report the last scrape that actually caught the queue live -- the final
    # scrape often lands on a drained instant and would report zeros.
    return totals, scrape["live_snapshot"]


def cache_soak(sock_path, clients, duration):
    """Warm the result cache over the shared sweep (cache:"refresh" forces a
    fresh solve per point and records its bytes), then replay the sweep from
    N clients with the default cache mode. Asserts byte parity of every
    cached response against the warm pass and that the cache is observable
    mid-soak through both the stats cache block and the Prometheus body."""
    fresh = {}
    with connect(sock_path) as sock:
        rfile = sock.makefile("r")
        for i, point in enumerate(CACHE_SWEEP):
            resp = roundtrip(sock, rfile, 5000 + i,
                             {**point, "cache": "refresh"},
                             request_id=f"warm-{i}")
            if not resp.get("ok"):
                raise RuntimeError(f"warm pass failed on point {i}: {resp}")
            fresh[i] = resp["output"]

    stop_at = time.time() + duration
    lock = threading.Lock()
    totals = {"submitted": 0, "ok": 0, "hits": 0, "queue_full": 0,
              "other_error": 0}
    errors = []
    observed = {"stats_hits": 0, "metrics_seen": False, "snapshot": None}

    def scraper_loop():
        n = 0
        while time.time() < stop_at - 0.5:
            time.sleep(1.0)
            n += 1
            try:
                with connect(sock_path) as sock:
                    rfile = sock.makefile("r")
                    stats = roundtrip(sock, rfile, 0, {"op": "stats"},
                                      request_id=f"cache-scrape-{n}")
                    metrics = roundtrip(sock, rfile, 1, {"op": "metrics"},
                                        request_id=f"cache-scrape-m-{n}")
            except Exception as exc:  # noqa: BLE001 - surfaced in main
                errors.append({"cache_scraper": n, "exception": repr(exc)})
                return
            hits = stats.get("cache", {}).get("hits", 0)
            with lock:
                if hits > observed["stats_hits"]:
                    observed["stats_hits"] = hits
                    observed["snapshot"] = stats.get("cache")
                if "pdn3d_service_cache_hits" in metrics.get("body", ""):
                    observed["metrics_seen"] = True

    def client_loop(client_idx):
        next_id = client_idx * 1_000_000
        try:
            with connect(sock_path) as sock:
                rfile = sock.makefile("r")
                while time.time() < stop_at:
                    point = next_id % len(CACHE_SWEEP)
                    resp = roundtrip(sock, rfile, next_id, CACHE_SWEEP[point],
                                     request_id=f"cache-{client_idx}-{next_id}")
                    next_id += 1
                    with lock:
                        totals["submitted"] += 1
                        if resp.get("ok"):
                            totals["ok"] += 1
                            if resp.get("cache") == "hit":
                                totals["hits"] += 1
                            if resp.get("output") != fresh[point]:
                                errors.append({"parity": point,
                                               "client": client_idx})
                        elif resp.get("error", {}).get("kind") == "queue_full":
                            totals["queue_full"] += 1
                        else:
                            totals["other_error"] += 1
                            errors.append(resp)
        except Exception as exc:  # noqa: BLE001 - surfaced in main
            errors.append({"cache_client": client_idx, "exception": repr(exc)})

    threads = [threading.Thread(target=client_loop, args=(c,))
               for c in range(clients)]
    threads.append(threading.Thread(target=scraper_loop))
    started = time.time()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.time() - started
    if errors:
        raise RuntimeError(f"cache soak errors: {errors[:5]}")
    if totals["ok"] + totals["queue_full"] != totals["submitted"]:
        raise RuntimeError(f"cache soak dropped responses: {totals}")
    if totals["hits"] == 0:
        raise RuntimeError(f"cache soak produced zero hits: {totals}")
    if observed["stats_hits"] == 0:
        raise RuntimeError("mid-soak stats scrape never saw cache.hits > 0")
    if not observed["metrics_seen"]:
        raise RuntimeError("metrics body lacks pdn3d_service_cache_hits")
    totals["points"] = len(CACHE_SWEEP)
    totals["elapsed_s"] = round(elapsed, 3)
    totals["requests_per_s"] = round(totals["ok"] / elapsed, 3)
    totals["hit_rate"] = round(totals["hits"] / max(1, totals["ok"]), 4)
    totals["mid_soak_cache"] = observed["snapshot"]
    return totals


def cold_cli_baseline(binary, budget_s=15.0, max_runs=40):
    """Fresh process per request: what serving replaces."""
    runs = 0
    started = time.time()
    while runs < max_runs and time.time() - started < budget_s:
        run_cli(binary, ["analyze", "wide-io"])
        runs += 1
    elapsed = time.time() - started
    return {"runs": runs, "elapsed_s": round(elapsed, 3),
            "requests_per_s": round(runs / elapsed, 3)}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="path to the pdn3d executable")
    ap.add_argument("--duration", type=float, default=60.0,
                    help="soak duration in seconds (default 60)")
    ap.add_argument("--clients", type=int, default=4,
                    help="concurrent Unix-socket clients (default 4)")
    ap.add_argument("--cache-duration", type=float, default=None,
                    help="cache-soak replay seconds (default min(20, duration))")
    ap.add_argument("--out", default="bench/BENCH_service.json")
    args = ap.parse_args()

    scratch = tempfile.mkdtemp(prefix="pdn3d_serve_")
    sock_path = os.path.join(scratch, "pdn3d.sock")
    report_path = os.path.join(scratch, "serve_report.json")

    server = start_server(args.binary, sock_path, report_path)
    try:
        print("parity: CLI vs served ...", flush=True)
        parity = parity_check(args.binary, sock_path)
        print(f"soak: {args.clients} clients x {args.duration:.0f}s ...", flush=True)
        soak_totals, mid_soak_stats = soak(sock_path, args.clients, args.duration)
        cache_secs = (args.cache_duration if args.cache_duration is not None
                      else min(20.0, args.duration))
        print(f"cache soak: {len(CACHE_SWEEP)} points x {args.clients} clients"
              f" x {cache_secs:.0f}s ...", flush=True)
        cache_totals = cache_soak(sock_path, args.clients, cache_secs)
        # Final scrape after the load stops: totals are settled, queue empty.
        final_stats = scrape_stats(sock_path, request_id="final")
    finally:
        stop_server(server)

    with open(report_path, encoding="utf-8") as fh:
        session = json.load(fh).get("session", {})

    print("cold CLI baseline ...", flush=True)
    cold = cold_cli_baseline(args.binary)

    speedup = (soak_totals["requests_per_s"] / cold["requests_per_s"]
               if cold["requests_per_s"] > 0 else None)
    result = {
        "bench": "service",
        "binary": os.path.abspath(args.binary),
        "soak": {
            "clients": args.clients,
            "duration_s": args.duration,
            **soak_totals,
            "dropped": soak_totals["submitted"] - soak_totals["ok"]
            - soak_totals["queue_full"],
        },
        "server_session": {k: session.get(k) for k in
                           ("workers", "queue_capacity", "submitted", "completed",
                            "rejected_queue_full", "deadline_expired", "cancelled",
                            "bad_requests", "uptime_seconds", "peak_queue_depth",
                            "peak_in_flight")},
        "mid_soak_stats": {
            "queue_depth": mid_soak_stats.get("queue_depth"),
            "in_flight": mid_soak_stats.get("in_flight"),
            "run_ms": mid_soak_stats.get("windows", {}).get("service.run_ms"),
        },
        "final_stats": {
            "uptime_seconds": final_stats.get("uptime_seconds"),
            "totals": final_stats.get("totals"),
            "queue_ms": final_stats.get("windows", {}).get("service.queue_ms"),
            "run_ms": final_stats.get("windows", {}).get("service.run_ms"),
        },
        "cache_soak": {
            "clients": args.clients,
            "duration_s": cache_secs,
            **cache_totals,
        },
        "parity": parity,
        "cold_cli": cold,
        "throughput_speedup_vs_cold_cli": round(speedup, 2) if speedup else None,
        "cache_speedup_vs_soak": (
            round(cache_totals["requests_per_s"]
                  / soak_totals["requests_per_s"], 2)
            if soak_totals["requests_per_s"] > 0 else None),
    }

    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps({k: result[k] for k in
                      ("soak", "cache_soak", "cold_cli",
                       "throughput_speedup_vs_cold_cli",
                       "cache_speedup_vs_soak")},
                     indent=2))
    print(f"wrote {args.out}")
    status = 0
    if speedup is not None and speedup < 2.0:
        print(f"WARNING: speedup {speedup:.2f}x below the 2x target",
              file=sys.stderr)
        status = 1
    cache_speedup = result["cache_speedup_vs_soak"]
    if cache_speedup is not None and cache_speedup < 5.0:
        print(f"WARNING: cache soak only {cache_speedup:.2f}x the bypassed "
              "soak, below the 5x target", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
