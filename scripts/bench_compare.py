#!/usr/bin/env python3
"""Perf-regression gate: fresh bench run vs a committed bench/BENCH_*.json.

Two baseline formats, auto-detected:

  * google-benchmark JSON (bench/BENCH_solver.json): the named binary is
    re-run with --benchmark_format=json and every series present in both
    runs is compared on real_time (lower is better). A series that got more
    than --threshold slower than the baseline fails the gate. With
    --repetitions N the minimum across repetitions is gated (noise only adds
    time), and --series restricts both the comparison and the fresh run
    (via --benchmark_filter) to the named series. --require-ratio
    SLOW:FAST:MIN additionally asserts a cross-series speedup floor on the
    fresh run (e.g. the hierarchical solver tier must stay >= 2x faster
    than the per-point sparse-direct sweep).
  * service soak JSON (bench/BENCH_service.json, written by
    scripts/bench_service.py): compared file-vs-file via --fresh on
    soak.requests_per_s (higher is better), since re-running the 60 s soak
    belongs to bench_service.py, not to this gate.

Build-type guard: google-benchmark baselines embed
context.library_build_type. When the fresh run's build type differs the
numbers are incomparable (debug vs release is a 10x, not a regression), so
the gate reports SKIPPED and exits 0 rather than crying wolf.

--inject-slowdown F multiplies every fresh timing by F before comparing.
It exists so the gate itself can be tested: a WILL_FAIL ctest runs with
--inject-slowdown 2.0 and must fail, proving a real 2x regression would
be caught (see bench/CMakeLists.txt, `ctest -C perf`).

Usage:
  bench_compare.py --baseline bench/BENCH_solver.json --binary build/bench/bench_solver_perf
  bench_compare.py --baseline bench/BENCH_service.json --fresh new_service.json

Exit codes: 0 pass/skip, 1 regression, 2 usage or malformed input.
Stdlib only.
"""

import argparse
import json
import re
import subprocess
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_json(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def series_times_ns(doc):
    """name -> real_time in ns for a google-benchmark JSON document.

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    skipped; when a name repeats (repetition rows) the MINIMUM is kept.
    Min beats mean here: scheduler noise and noisy-neighbor CPU steal only
    ever add time, so the fastest repetition is the closest estimate of the
    code's true cost on a shared box.
    """
    best = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name")
        unit = TIME_UNIT_NS.get(row.get("time_unit", "ns"))
        if name is None or unit is None or "real_time" not in row:
            continue
        ns = row["real_time"] * unit
        if name not in best or ns < best[name]:
            best[name] = ns
    return best


def run_google_bench(binary, min_time, repetitions=1, only_names=None):
    cmd = [binary, "--benchmark_format=json",
           f"--benchmark_min_time={min_time}"]
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
    if only_names:
        # Anchored alternation so the binary only runs the gated series.
        pattern = "^(" + "|".join(re.escape(n) for n in sorted(only_names)) + ")$"
        cmd.append(f"--benchmark_filter={pattern}")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, check=False)
    if proc.returncode != 0:
        print(f"bench_compare: {' '.join(cmd)} failed:\n{proc.stderr}",
              file=sys.stderr)
        sys.exit(2)
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        print(f"bench_compare: bench output is not JSON: {exc}", file=sys.stderr)
        sys.exit(2)


def parse_ratio_specs(specs):
    """'SLOW:FAST:MIN' triples -> [(slow, fast, min_ratio)], exit 2 on junk."""
    out = []
    for spec in specs or []:
        parts = spec.rsplit(":", 2)
        try:
            slow, fast, min_ratio = parts[0], parts[1], float(parts[2])
        except (IndexError, ValueError):
            print(f"bench_compare: bad --require-ratio '{spec}' "
                  f"(want SLOW:FAST:MIN)", file=sys.stderr)
            sys.exit(2)
        out.append((slow, fast, min_ratio))
    return out


def gate_ratios(fresh_times, require_ratios):
    """Cross-series speedup floors (e.g. hierarchical tier vs sparse-direct).

    Measured on the fresh run, not the baseline: the claim "series FAST is
    at least MIN times faster than series SLOW" must hold on this box today,
    not merely in the recording. Both series come from the same in-process
    run, so machine speed divides out of the ratio.
    """
    failures = 0
    for slow, fast, min_ratio in require_ratios:
        missing = [n for n in (slow, fast) if n not in fresh_times]
        if missing:
            print(f"bench_compare: --require-ratio series missing from run: "
                  f"{missing}", file=sys.stderr)
            return 2
        ratio = fresh_times[slow] / fresh_times[fast]
        marker = "ok" if ratio >= min_ratio else "RATIO FAIL"
        print(f"  speedup {fast} vs {slow}: {ratio:.2f}x "
              f"(floor {min_ratio:.2f}x)  {marker}")
        if ratio < min_ratio:
            failures += 1
    return 1 if failures else 0


def gate_google(baseline, fresh, threshold, slowdown, series_filter,
                require_ratios=()):
    base_times = series_times_ns(baseline)
    fresh_times = series_times_ns(fresh)

    base_build = baseline.get("context", {}).get("library_build_type")
    fresh_build = fresh.get("context", {}).get("library_build_type")
    if base_build and fresh_build and base_build != fresh_build:
        print(f"bench_compare: SKIPPED -- baseline is a {base_build} build, "
              f"fresh run is {fresh_build}; timings are incomparable. "
              f"Re-record the baseline from this build type to gate it.")
        return 0

    names = sorted(set(base_times) & set(fresh_times))
    if series_filter:
        names = [n for n in names if n in series_filter]
        missing = series_filter - set(names)
        if missing:
            print(f"bench_compare: requested series missing from run: "
                  f"{sorted(missing)}", file=sys.stderr)
            return 2
    if not names:
        print("bench_compare: no comparable series between baseline and run",
              file=sys.stderr)
        return 2
    only_base = sorted(set(base_times) - set(fresh_times))
    if only_base:
        print(f"note: {len(only_base)} baseline series not in fresh run "
              f"(not gated): {only_base[:5]}")

    regressions = []
    for name in names:
        fresh_ns = fresh_times[name] * slowdown
        ratio = fresh_ns / base_times[name] if base_times[name] > 0 else float("inf")
        marker = "REGRESSION" if ratio > 1.0 + threshold else "ok"
        print(f"  {name:<40} base {base_times[name]/1e6:10.3f} ms   "
              f"fresh {fresh_ns/1e6:10.3f} ms   {ratio:6.2f}x  {marker}")
        if ratio > 1.0 + threshold:
            regressions.append((name, ratio))

    ratio_rc = gate_ratios(fresh_times, require_ratios)
    if ratio_rc == 2:
        return 2

    if regressions:
        print(f"bench_compare: FAIL -- {len(regressions)} series regressed "
              f"beyond {threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    if ratio_rc:
        print("bench_compare: FAIL -- cross-series speedup floor not met")
        return 1
    print(f"bench_compare: PASS ({len(names)} series within {threshold:.0%} "
          f"of baseline)")
    return 0


def gate_service(baseline, fresh, threshold, slowdown):
    # soak.requests_per_s is mandatory; cache_soak.requests_per_s is gated
    # only when both files carry it, so pre-cache baselines keep working.
    series = [("soak", True)]
    if "cache_soak" in baseline and "cache_soak" in fresh:
        series.append(("cache_soak", True))
    elif "cache_soak" in baseline:
        print("note: baseline has cache_soak but fresh run does not (not gated)")

    failures = []
    for key, required in series:
        try:
            base_rps = float(baseline[key]["requests_per_s"])
            fresh_rps = float(fresh[key]["requests_per_s"]) / slowdown
        except (KeyError, TypeError, ValueError):
            if required and key == "soak":
                print("bench_compare: service JSON lacks soak.requests_per_s",
                      file=sys.stderr)
                return 2
            continue
        floor = base_rps * (1.0 - threshold)
        print(f"  {key}.requests_per_s: base {base_rps:.1f}  "
              f"fresh {fresh_rps:.1f}  floor {floor:.1f}")
        if fresh_rps < floor:
            failures.append((key, base_rps, fresh_rps))

    if failures:
        for key, base_rps, fresh_rps in failures:
            print(f"bench_compare: FAIL -- {key} throughput {fresh_rps:.1f} "
                  f"req/s is more than {threshold:.0%} below baseline "
                  f"{base_rps:.1f}")
        return 1
    print(f"bench_compare: PASS ({len(series)} service series within "
          f"threshold)")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Perf-regression gate vs committed bench baselines.")
    ap.add_argument("--baseline", required=True,
                    help="committed bench/BENCH_*.json to gate against")
    ap.add_argument("--binary", help="google-benchmark binary to re-run")
    ap.add_argument("--fresh", help="pre-recorded fresh-run JSON (file mode)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative regression (default 0.15 = 15%%)")
    ap.add_argument("--min-time", default="0.1",
                    help="--benchmark_min_time for the fresh run (default 0.1)")
    ap.add_argument("--repetitions", type=int, default=1,
                    help="--benchmark_repetitions for the fresh run; the "
                         "minimum across repetitions is gated (default 1)")
    ap.add_argument("--inject-slowdown", type=float, default=1.0,
                    help="multiply fresh timings by F (gate self-test)")
    ap.add_argument("--series", nargs="*", default=None,
                    help="gate only these series (default: all shared)")
    ap.add_argument("--require-ratio", action="append", default=[],
                    metavar="SLOW:FAST:MIN",
                    help="also require fresh time(SLOW)/time(FAST) >= MIN "
                         "(cross-series speedup floor; repeatable)")
    args = ap.parse_args()

    baseline = load_json(args.baseline)
    is_service = baseline.get("bench") == "service"

    if is_service:
        if not args.fresh:
            print("bench_compare: service baselines need --fresh "
                  "(re-run bench_service.py first)", file=sys.stderr)
            return 2
        return gate_service(baseline, load_json(args.fresh), args.threshold,
                            args.inject_slowdown)

    if args.fresh:
        fresh = load_json(args.fresh)
    elif args.binary:
        fresh = run_google_bench(args.binary, args.min_time, args.repetitions,
                                 args.series)
    else:
        print("bench_compare: need --binary or --fresh", file=sys.stderr)
        return 2
    return gate_google(baseline, fresh, args.threshold, args.inject_slowdown,
                       set(args.series) if args.series else None,
                       parse_ratio_specs(args.require_ratio))


if __name__ == "__main__":
    sys.exit(main())
