#!/usr/bin/env bash
# Smoke test for `pdn3d serve` (wired into ctest as cli_serve_smoke).
#
# Pipes a small NDJSON request mix -- evaluate (twice, so the second is a
# cache hit), ping, stats, metrics, a bad line, validate -- through the stdin
# transport and asserts the exactly-one-response-per-request contract
# (request_id echo included) plus a schema-v6 run report with the session
# block and its result-cache stats.
#
# Usage: serve_smoke.sh /path/to/pdn3d scratch-dir
set -euo pipefail

bin="$1"
scratch="$2"
mkdir -p "$scratch"
out="$scratch/serve_out.ndjson"
report="$scratch/serve_report.json"

printf '%s\n' \
  '{"id":1,"op":"evaluate","benchmark":"off-chip","state":"0-0-0-2","design":{"bd":"f2f"}}' \
  '{"id":2,"op":"ping","request_id":"smoke-ping"}' \
  'this line is not json' \
  '{"id":4,"op":"validate","benchmark":"wide-io"}' \
  '{"id":5,"op":"stats"}' \
  '{"id":6,"op":"metrics"}' \
  '{"id":7,"op":"evaluate","benchmark":"off-chip","state":"0-0-0-2","design":{"bd":"f2f"}}' \
  | "$bin" serve --queue 8 --threads 1 --report "$report" > "$out"

fail() { echo "serve_smoke: FAIL: $1" >&2; cat "$out" >&2; exit 1; }

[[ "$(wc -l < "$out")" -eq 7 ]] || fail "expected 7 response lines"
grep -q '"id":1.*"ok":true.*"op":"evaluate"' "$out" || fail "missing evaluate response"
grep -q '"id":7.*"cache":"hit"' "$out"              || fail "repeat request was not a cache hit"
grep -q '"id":2,"ok":true,"op":"ping"' "$out"       || fail "missing ping response"
grep -q '"request_id":"smoke-ping"' "$out"          || fail "client request_id not echoed"
grep -q '"kind":"bad_request"' "$out"               || fail "missing bad_request response"
grep -q '"id":4.*validation passed' "$out"          || fail "missing validate response"
grep -q '"id":5.*"op":"stats".*"windows"' "$out"    || fail "missing stats response"
grep -q '"id":6.*"op":"metrics".*pdn3d_service_requests' "$out" || fail "missing metrics response"
grep -q '"request_id":"r-' "$out"                   || fail "missing generated request_id"
grep -q '"session"' "$report"                       || fail "report lacks session block"
grep -q '"windows"' "$report"                       || fail "report lacks metrics.windows"
grep -q '"cache"' "$report"                         || fail "report lacks session cache block"
grep -q 'service.cache.hits' "$report"              || fail "report lacks cache counters"

echo "serve_smoke: OK ($out)"
