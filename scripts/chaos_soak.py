#!/usr/bin/env python3
"""Chaos soak for `pdn3d serve`: hammer the socket front end while the
fault-injection framework (PDN3D_FAULTS, docs/ROBUSTNESS.md) fires solver
stalls, allocation failures, queue delays, and connection resets.

Invariant under test: every request the server admits is answered exactly
once -- with a result or a *typed* error -- no hangs, no duplicate ids, no
crashes, and SIGTERM still drains cleanly at the end.

Connections killed by the injected `service.socket.reset` fault lose their
in-flight responses by design (the server wrote into a dead socket); those
requests are forgiven, everything else must be answered.

Exit 0 on a clean soak, 1 on any violation. Stdlib only.

Usage:
  chaos_soak.py --binary build/tools/pdn3d [--duration 60] [--clients 4]
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

KNOWN_ERROR_KINDS = {
    "bad_request", "queue_full", "deadline_exceeded", "cancelled", "shutdown",
    "not_found", "evaluation_failed", "overloaded", "timeout",
    "request_too_large", "internal",
}

DEFAULT_FAULTS = ",".join([
    "linalg.cg.stall=0.05:20",
    "irdrop.solve.alloc=0.05",
    "service.queue.delay=0.10:30",
    "service.socket.reset=0.05",
    "seed=1234",
])

REQUEST_MIX = [
    '{"id":%d,"op":"ping"}',
    '{"id":%d,"op":"health"}',
    '{"id":%d,"op":"stats"}',
    '{"id":%d,"op":"metrics"}',
    '{"id":%d,"op":"validate","benchmark":"wide-io"}',
    '{"id":%d,"op":"evaluate","benchmark":"wide-io"}',
    '{"id":%d,"op":"evaluate","benchmark":"off-chip"}',
    # Every cache mode under fault churn: hits, forced re-solves, and
    # uncached solves must all survive injected faults identically.
    '{"id":%d,"op":"evaluate","benchmark":"wide-io","cache":"refresh"}',
    '{"id":%d,"op":"evaluate","benchmark":"off-chip","cache":"bypass"}',
    '{"id":%d,"op":"montecarlo","benchmark":"wide-io","samples":4}',
    '{"id":%d,"op":"validate","benchmark":"hmc"}',
    '{"id":%d,"op":"em-check","benchmark":"wide-io"}',
    '{"id":%d,"op":"em-check","benchmark":"wide-io","design":{"em-temp":100}}',
    'this is not json (id %d)',  # must come back as a typed bad_request
]


class Violation(Exception):
    pass


class ClientStats:
    def __init__(self):
        self.lock = threading.Lock()
        self.sent = 0
        self.answered = 0
        self.forgiven_on_reset = 0
        self.resets = 0
        self.error_kinds = {}
        self.violations = []

    def violation(self, msg):
        with self.lock:
            self.violations.append(msg)

    def count_error(self, kind):
        with self.lock:
            self.error_kinds[kind] = self.error_kinds.get(kind, 0) + 1


def recv_lines(sock, buf, deadline):
    """Yield complete lines; raise ConnectionError on EOF/reset."""
    while b"\n" not in buf[0]:
        sock.settimeout(max(0.1, deadline - time.monotonic()))
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("EOF")
        buf[0] += chunk
    line, _, rest = buf[0].partition(b"\n")
    buf[0] = rest
    return line.decode("utf-8", errors="replace")


def run_batch(path, ids, stats):
    """One connection, one batch: send every request, then collect responses
    until each id was answered exactly once. Returns False if the connection
    was reset (those unanswered requests are forgiven)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    try:
        sock.connect(path)
    except OSError:
        sock.close()
        stats.resets += 1
        return False
    pending = {}
    buf = [b""]
    reset = False
    try:
        for req_id, template in ids:
            line = template % req_id
            sock.sendall(line.encode() + b"\n")
            stats.sent += 1
            # The malformed line is answered with id -1.
            pending[-1 if "not json" in template else req_id] = \
                pending.get(-1 if "not json" in template else req_id, 0) + 1
        deadline = time.monotonic() + 60.0  # generous: watchdog bounds each eval
        while pending:
            if time.monotonic() > deadline:
                raise Violation("hang: %d requests unanswered after 60 s: %s"
                                % (sum(pending.values()), sorted(pending)))
            line = recv_lines(sock, buf, deadline)
            check_response(line, pending, stats)
    except (ConnectionError, BrokenPipeError, socket.timeout) as exc:
        if isinstance(exc, socket.timeout):
            raise Violation("recv timeout with %s pending" % sorted(pending))
        # Injected socket reset: the server dropped this connection. Responses
        # for its in-flight requests are lost with it -- forgiven.
        reset = True
        stats.resets += 1
        stats.forgiven_on_reset += sum(pending.values())
    finally:
        sock.close()
    return not reset


def check_response(line, pending, stats):
    try:
        resp = json.loads(line)
    except json.JSONDecodeError:
        raise Violation("unparseable response: %r" % line[:200])
    if not isinstance(resp, dict) or "id" not in resp or "ok" not in resp:
        raise Violation("response missing id/ok: %r" % line[:200])
    rid = resp["id"]
    if rid not in pending:
        raise Violation("unexpected or duplicate response id %r" % rid)
    pending[rid] -= 1
    if pending[rid] == 0:
        del pending[rid]
    stats.answered += 1
    if not resp["ok"]:
        kind = (resp.get("error") or {}).get("kind")
        if kind not in KNOWN_ERROR_KINDS:
            raise Violation("untyped error response: %r" % line[:200])
        stats.count_error(kind)


def client_loop(path, client_idx, stop_at, stats):
    rid = client_idx * 1_000_000 + 1
    batch_no = 0
    try:
        while time.monotonic() < stop_at:
            ids = []
            for i in range(8):
                template = REQUEST_MIX[(batch_no + i + client_idx) % len(REQUEST_MIX)]
                ids.append((rid, template))
                rid += 1
            run_batch(path, ids, stats)
            batch_no += 1
    except Violation as v:
        stats.violation("client %d: %s" % (client_idx, v))
    except Exception as exc:  # noqa: BLE001 -- any escape is a soak failure
        stats.violation("client %d: unexpected %r" % (client_idx, exc))


def final_stats_scrape(path):
    """One last `stats` round trip before shutdown: the telemetry surface
    must still answer after the whole soak, and its counters must show the
    soak happened. Returns the parsed stats response."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    try:
        sock.connect(path)
        sock.sendall(b'{"id":0,"op":"stats","request_id":"chaos-final"}\n')
        buf = [b""]
        line = recv_lines(sock, buf, time.monotonic() + 10.0)
    finally:
        sock.close()
    resp = json.loads(line)
    if not resp.get("ok") or resp.get("request_id") != "chaos-final":
        raise Violation("final stats scrape failed: %r" % line[:200])
    if resp.get("totals", {}).get("submitted", 0) == 0:
        raise Violation("final stats show zero submitted requests")
    return resp


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True, help="path to the pdn3d CLI")
    ap.add_argument("--duration", type=float, default=60.0,
                    help="soak duration in seconds (default 60)")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--socket", default=None, help="socket path (default: temp)")
    ap.add_argument("--faults", default=DEFAULT_FAULTS,
                    help="PDN3D_FAULTS spec (default: >=5%% on four sites)")
    args = ap.parse_args()

    path = args.socket or os.path.join(
        tempfile.mkdtemp(prefix="pdn3d_chaos_"), "chaos.sock")
    if os.path.exists(path):
        os.unlink(path)

    env = dict(os.environ)
    env["PDN3D_FAULTS"] = args.faults
    server = subprocess.Popen(
        [args.binary, "serve", "--socket", path, "--queue", "16",
         "--threads", "2", "--watchdog", "2000", "--max-cost", "64"],
        stdin=subprocess.DEVNULL, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, env=env)

    ok = False
    stats = ClientStats()
    try:
        for _ in range(150):  # wait for the socket to come up
            if os.path.exists(path):
                break
            if server.poll() is not None:
                break
            time.sleep(0.1)
        if server.poll() is not None or not os.path.exists(path):
            print("FAIL: server did not come up", file=sys.stderr)
            return 1

        stop_at = time.monotonic() + args.duration
        threads = [threading.Thread(target=client_loop,
                                    args=(path, i, stop_at, stats))
                   for i in range(args.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if server.poll() is not None:
            stats.violation("server died mid-soak (exit %s)" % server.returncode)

        # The stats op must still answer after the whole soak (the injected
        # socket reset can kill this one connection too -- retry a few times).
        final_stats = None
        if server.poll() is None:
            for _ in range(5):
                try:
                    final_stats = final_stats_scrape(path)
                    break
                except Violation as v:
                    stats.violation("final scrape: %s" % v)
                    break
                except (OSError, ConnectionError, json.JSONDecodeError):
                    time.sleep(0.2)
            if final_stats is not None:
                totals = final_stats.get("totals", {})
                run_ms = final_stats.get("windows", {}).get("service.run_ms", {})
                print("final stats: submitted=%s completed=%s run_ms p50=%.3g "
                      "p99=%.3g" % (totals.get("submitted"),
                                    totals.get("completed"),
                                    run_ms.get("p50", 0), run_ms.get("p99", 0)))
            else:
                stats.violation("final stats scrape never got through")

        # Clean shutdown: SIGTERM must drain and exit 0.
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
        try:
            _, err = server.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            stats.violation("server hung on SIGTERM (no drain within 60 s)")
            server.kill()
            _, err = server.communicate()
        if server.returncode != 0:
            stats.violation("server exit code %s after SIGTERM" % server.returncode)
        if b"drained" not in err:
            stats.violation("no drain summary on stderr: %r" % err[-300:])

        print("chaos soak: sent=%d answered=%d forgiven_on_reset=%d resets=%d"
              % (stats.sent, stats.answered, stats.forgiven_on_reset, stats.resets))
        print("  error kinds: %s" % (stats.error_kinds or "{}"))
        if stats.answered == 0:
            stats.violation("no request was ever answered")
        if stats.violations:
            for v in stats.violations:
                print("VIOLATION: %s" % v, file=sys.stderr)
            return 1
        print("chaos soak: PASS")
        ok = True
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
        if os.path.exists(path):
            os.unlink(path)
        if not ok:
            sys.stderr.flush()


if __name__ == "__main__":
    sys.exit(main())
