#!/usr/bin/env python3
"""Validate a pdn3d --report JSON file against run-report schema v8.

Stdlib-only so it can run anywhere the repo builds. Exits 0 when the report
conforms, 1 with a list of problems otherwise. The schema is documented in
docs/OBSERVABILITY.md; bump SCHEMA_VERSION there and here together.

v2 added the top-level "threads" key: the effective worker-thread count
(--threads / PDN3D_THREADS / hardware concurrency) the run resolved.
v3 added the "factor" sub-object to "solver": cached sparse-direct
factorization statistics (builds, build_failures, cache_hits, fill_ratio,
nnz).
v4 added the optional top-level "session" block emitted by `pdn3d serve`:
service aggregates plus one record per evaluated request.
v5 added "windows" under "metrics" (windowed quantile snapshots), the
per-request "request_id" under session.requests, and session uptime/peak
load ("uptime_seconds", "peak_queue_depth", "peak_in_flight").
v6 added the optional top-level "fingerprint" key (canonical request
fingerprint, facade commands only), the session "cache" sub-object
(result-cache stats), and per-request "fingerprint"/"cache" keys under
session.requests.
v7 added the "macromodel" sub-object to "solver": hierarchical-tier reuse
statistics (builds, reuses, woodbury_updates, fallbacks).
v8 added the "em" sub-object to "solver": electromigration pass statistics
(checks, violations, worst_utilization, min_mttf_hours).

Usage: check_report_schema.py report.json [report2.json ...]
"""

import json
import numbers
import sys

SCHEMA_VERSION = 8

# key -> allowed python types for the documented top-level fields.
TOP_LEVEL = {
    "schema": numbers.Number,
    "tool": str,
    "version": str,
    "command": str,
    "benchmark": str,
    "threads": numbers.Number,
    "provenance": dict,
    "metrics": dict,
    "spans": list,
    "solver": dict,
    "trace_dropped_events": numbers.Number,
    "trace_unbalanced_spans": numbers.Number,
}

PROVENANCE_KEYS = {
    "git_revision": str,
    "build_type": str,
    "compiler": str,
    "timestamp_utc": str,
    "argv": list,
}

METRICS_KEYS = {"counters": dict, "gauges": dict, "histograms": dict, "windows": dict}

SPAN_ROW_KEYS = {
    "path": str,
    "count": numbers.Number,
    "total_s": numbers.Number,
    "self_s": numbers.Number,
    "min_s": numbers.Number,
    "max_s": numbers.Number,
}

SOLVER_KEYS = {
    "solves": numbers.Number,
    "failures": numbers.Number,
    "escalations": numbers.Number,
    "rung_attempts": dict,
    "rung_failures": dict,
    "factor": dict,
    "macromodel": dict,
    "em": dict,
}

FACTOR_KEYS = {
    "builds": numbers.Number,
    "build_failures": numbers.Number,
    "cache_hits": numbers.Number,
    "fill_ratio": numbers.Number,
    "nnz": numbers.Number,
}

# v7: the hierarchical-tier block inside the solver block.
MACROMODEL_KEYS = {
    "builds": numbers.Number,
    "reuses": numbers.Number,
    "woodbury_updates": numbers.Number,
    "fallbacks": numbers.Number,
}

# v8: the electromigration block inside the solver block.
EM_KEYS = {
    "checks": numbers.Number,
    "violations": numbers.Number,
    "worst_utilization": numbers.Number,
    "min_mttf_hours": numbers.Number,
}

# v4: the `pdn3d serve` session block (optional; one-shot commands omit it).
SESSION_KEYS = {
    "workers": numbers.Number,
    "queue_capacity": numbers.Number,
    "uptime_seconds": numbers.Number,
    "peak_queue_depth": numbers.Number,
    "peak_in_flight": numbers.Number,
    "submitted": numbers.Number,
    "completed": numbers.Number,
    "rejected_queue_full": numbers.Number,
    "rejected_shutdown": numbers.Number,
    "rejected_overload": numbers.Number,
    "rejected_too_large": numbers.Number,
    "bad_requests": numbers.Number,
    "deadline_expired": numbers.Number,
    "cancelled": numbers.Number,
    "timeouts": numbers.Number,
    "internal_errors": numbers.Number,
    "cache": dict,
    "requests": list,
    "requests_dropped_from_report": numbers.Number,
}

# v6: the result-cache block inside the session block.
SESSION_CACHE_KEYS = {
    "entries": numbers.Number,
    "capacity": numbers.Number,
    "hits": numbers.Number,
    "misses": numbers.Number,
    "insertions": numbers.Number,
    "evictions": numbers.Number,
    "bypass": numbers.Number,
}

SESSION_REQUEST_KEYS = {
    "id": numbers.Number,
    "request_id": str,
    "op": str,
    "benchmark": str,
    "ok": bool,
    "queue_ms": numbers.Number,
    "run_ms": numbers.Number,
    "headline_mv": numbers.Number,
    "fingerprint": str,
    "cache": str,
}


WINDOW_KEYS = {
    "count": numbers.Number,
    "window_count": numbers.Number,
    "min": numbers.Number,
    "max": numbers.Number,
    "sum": numbers.Number,
    "p50": numbers.Number,
    "p90": numbers.Number,
    "p95": numbers.Number,
    "p99": numbers.Number,
}


def check_block(errors, block, spec, where):
    if not isinstance(block, dict):
        errors.append(f"{where}: expected object, got {type(block).__name__}")
        return
    for key, expected in spec.items():
        if key not in block:
            errors.append(f"{where}: missing key '{key}'")
        elif expected is bool:
            if not isinstance(block[key], bool):
                errors.append(
                    f"{where}.{key}: expected bool, got {type(block[key]).__name__}"
                )
        elif not isinstance(block[key], expected) or isinstance(block[key], bool):
            errors.append(
                f"{where}.{key}: expected {expected.__name__}, "
                f"got {type(block[key]).__name__}"
            )


def check_report(report):
    errors = []
    if not isinstance(report, dict):
        return [f"top level: expected object, got {type(report).__name__}"]

    check_block(errors, report, TOP_LEVEL, "top level")
    if errors:
        return errors

    if report["schema"] != SCHEMA_VERSION:
        errors.append(f"schema: expected {SCHEMA_VERSION}, got {report['schema']}")
    if isinstance(report.get("threads"), numbers.Number) and report["threads"] < 1:
        errors.append(f"threads: expected >= 1, got {report['threads']}")
    if report["tool"] != "pdn3d":
        errors.append(f"tool: expected 'pdn3d', got {report['tool']!r}")

    check_block(errors, report["provenance"], PROVENANCE_KEYS, "provenance")
    check_block(errors, report["metrics"], METRICS_KEYS, "metrics")
    check_block(errors, report["solver"], SOLVER_KEYS, "solver")
    if isinstance(report["solver"], dict) and isinstance(report["solver"].get("factor"), dict):
        check_block(errors, report["solver"]["factor"], FACTOR_KEYS, "solver.factor")
    if isinstance(report["solver"], dict) and isinstance(
        report["solver"].get("macromodel"), dict
    ):
        check_block(
            errors, report["solver"]["macromodel"], MACROMODEL_KEYS, "solver.macromodel"
        )
    if isinstance(report["solver"], dict) and isinstance(report["solver"].get("em"), dict):
        check_block(errors, report["solver"]["em"], EM_KEYS, "solver.em")

    for i, row in enumerate(report["spans"]):
        check_block(errors, row, SPAN_ROW_KEYS, f"spans[{i}]")

    # trace_events is optional (--report without raw events omits it).
    if "trace_events" in report and not isinstance(report["trace_events"], list):
        errors.append("trace_events: expected array")

    # fingerprint is optional (facade commands only) and must be 16 hex chars.
    if "fingerprint" in report:
        fp = report["fingerprint"]
        if not isinstance(fp, str) or len(fp) != 16 or any(
            c not in "0123456789abcdef" for c in fp
        ):
            errors.append(f"fingerprint: expected 16 lowercase hex chars, got {fp!r}")

    # session is optional (only `pdn3d serve` runs emit it).
    if "session" in report:
        check_block(errors, report["session"], SESSION_KEYS, "session")
        if isinstance(report["session"], dict) and isinstance(
            report["session"].get("cache"), dict
        ):
            check_block(
                errors, report["session"]["cache"], SESSION_CACHE_KEYS, "session.cache"
            )
        if isinstance(report["session"], dict) and isinstance(
            report["session"].get("requests"), list
        ):
            for i, row in enumerate(report["session"]["requests"]):
                check_block(
                    errors, row, SESSION_REQUEST_KEYS, f"session.requests[{i}]"
                )

    windows = report["metrics"].get("windows")
    if isinstance(windows, dict):
        for name, win in windows.items():
            check_block(errors, win, WINDOW_KEYS, f"metrics.windows[{name!r}]")

    counters = report["metrics"].get("counters")
    if isinstance(counters, dict):
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, numbers.Number):
                errors.append(f"metrics.counters[{name!r}]: expected number")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    status = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: FAIL: {exc}", file=sys.stderr)
            status = 1
            continue
        errors = check_report(report)
        if errors:
            for err in errors:
                print(f"{path}: FAIL: {err}", file=sys.stderr)
            status = 1
        else:
            print(f"{path}: OK (schema v{SCHEMA_VERSION})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
