#!/usr/bin/env python3
"""Lint metric names at obs::counter/gauge/histogram/window call sites.

The registry accepts any string, so naming drift (CamelCase, missing
subsystem prefix, spaces) only shows up later as an ugly Prometheus rewrite
or an ungreppable report key. This linter enforces the convention documented
in docs/OBSERVABILITY.md:

    subsystem.noun_verb[.qualifier...]

  - all lowercase; [a-z0-9_] within a component, '-' allowed in qualifiers
    (solver rung names like "ic-pcg" become label-ish suffixes);
  - at least one '.' (a bare "requests" has no owning subsystem);
  - the subsystem component starts with a letter.

Dynamic call sites (obs::counter("faults." + name)) are linted on their
literal prefix: it must be a valid name ending in '.'. Call sites whose
first argument carries no string literal at all (util::ScopedTimer's stored
metric_name_) are skipped -- the convention is enforced where the name is
spelled, which is every site that registers a new metric family.

Usage: check_metric_names.py SRC_DIR [SRC_DIR...]
Exit 0 when every literal conforms, 1 otherwise (offenders listed).

Stdlib only, so the build can run it as a ctest without extra deps.
"""

import pathlib
import re
import sys

CALL_RE = re.compile(
    r'obs::(?:counter|gauge|histogram|window)\(\s*(?:std::string\(\s*)?"(?P<name>[^"]*)"'
)
LINE_COMMENT_RE = re.compile(r"//.*$")

SUBSYSTEM_RE = re.compile(r"^[a-z][a-z0-9_]*$")
COMPONENT_RE = re.compile(r"^[a-z0-9][a-z0-9_-]*$")


def valid_name(name: str) -> bool:
    """Full metric name: subsystem.component[.component...]."""
    parts = name.split(".")
    if len(parts) < 2:
        return False
    if not SUBSYSTEM_RE.match(parts[0]):
        return False
    return all(COMPONENT_RE.match(p) for p in parts[1:])


def valid_prefix(prefix: str) -> bool:
    """Literal prefix of a dynamic name; must end at a component boundary."""
    if not prefix.endswith("."):
        return False
    parts = prefix[:-1].split(".")
    if not parts or not SUBSYSTEM_RE.match(parts[0]):
        return False
    return all(COMPONENT_RE.match(p) for p in parts[1:])


def lint_file(path: pathlib.Path):
    offenders = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        return [(0, f"unreadable: {exc}")]
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = LINE_COMMENT_RE.sub("", raw)
        for match in CALL_RE.finditer(line):
            name = match.group("name")
            if name.endswith("."):
                ok = valid_prefix(name)
            else:
                ok = valid_name(name)
            if not ok:
                offenders.append((lineno, name))
    return offenders


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    roots = [pathlib.Path(a) for a in argv[1:]]
    checked = 0
    bad = 0
    for root in roots:
        if not root.exists():
            print(f"check_metric_names: no such path: {root}", file=sys.stderr)
            return 2
        files = (
            sorted(root.rglob("*.cpp")) + sorted(root.rglob("*.hpp"))
            if root.is_dir()
            else [root]
        )
        for path in files:
            for lineno, name in lint_file(path):
                print(f"{path}:{lineno}: bad metric name {name!r} "
                      f"(want subsystem.noun_verb, lowercase)")
                bad += 1
            checked += 1
    if bad:
        print(f"check_metric_names: FAIL ({bad} offender(s) in {checked} files)")
        return 1
    print(f"check_metric_names: OK ({checked} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
