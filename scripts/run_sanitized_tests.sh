#!/usr/bin/env bash
# Configure, build, and run the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the PDN3D_SANITIZE CMake option). Intended for
# CI and pre-release checks; see docs/ROBUSTNESS.md.
#
# Usage: scripts/run_sanitized_tests.sh [build-dir] [-- extra ctest args]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"
shift $(( $# > 0 ? 1 : 0 )) || true

# Abort on the first sanitizer report instead of trying to continue, and make
# UBSan print stacks so CI logs are actionable.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPDN3D_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu)" "$@"
