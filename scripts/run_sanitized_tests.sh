#!/usr/bin/env bash
# Configure, build, and run the test suite under a sanitizer preset (the
# PDN3D_SANITIZE CMake option). Intended for CI and pre-release checks; see
# docs/ROBUSTNESS.md and docs/PARALLELISM.md.
#
# Presets (select with the PDN3D_SANITIZE environment variable):
#   address (default)  ASan + UBSan over the full test suite
#   thread             TSan over the concurrency suites (thread pool, parallel
#                      Monte Carlo / LUT / co-optimizer sweeps, platform cache)
#
# Usage: [PDN3D_SANITIZE=address|thread] scripts/run_sanitized_tests.sh \
#          [build-dir] [-- extra ctest args]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
preset="${PDN3D_SANITIZE:-address}"

case "$preset" in
  address|ON|on|1)
    preset=address
    default_build_dir="$repo_root/build-sanitize"
    ;;
  thread)
    default_build_dir="$repo_root/build-tsan"
    ;;
  *)
    echo "error: unknown PDN3D_SANITIZE preset '$preset' (want address or thread)" >&2
    exit 1
    ;;
esac

build_dir="${1:-$default_build_dir}"
shift $(( $# > 0 ? 1 : 0 )) || true

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu)"

if [[ "$preset" == thread ]]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPDN3D_SANITIZE=thread
  cmake --build "$build_dir" -j "$jobs"
  # The concurrency suites: the thread-pool unit tests plus every test that
  # drives a multi-threaded sweep, hammers a shared cache, or exercises the
  # batch service / fault registry across threads. The naming convention
  # (ThreadPool.*, Concurrent*, Parallel*, Service*, Faults*,
  # MacromodelConcurrency.*) is what this regex keys on -- new concurrency
  # tests should follow it to be picked up.
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
    -R '(ThreadPool|Concurrent|Parallel|Service|Faults|MacromodelConcurrency)' "$@"
else
  # Abort on the first sanitizer report instead of trying to continue, and
  # make UBSan print stacks so CI logs are actionable.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPDN3D_SANITIZE=ON
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" "$@"
fi
