// Quickstart: analyze the DC IR drop of the off-chip stacked-DDR3 benchmark
// at its industry-standard baseline design point, then try two of the
// paper's packaging upgrades (F2F bonding, wire bonding) and watch the
// worst-case IR drop move.

#include <iostream>

#include "core/platform.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace pdn3d;

  core::Platform platform(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  const pdn::PdnConfig baseline = platform.benchmark().baseline;

  std::cout << "Benchmark: " << platform.benchmark().name << "\n";
  std::cout << "Baseline design: " << baseline.summary() << "\n\n";

  // The default interleaving-read state: two banks on the top die (IDD7).
  const auto result = platform.analyze(baseline, "0-0-0-2");
  std::cout << "Memory state 0-0-0-2 (two banks reading on the top die):\n";
  std::cout << "  max DRAM IR drop : " << util::fmt_fixed(result.dram_max_mv, 2) << " mV\n";
  std::cout << "  total stack power: " << util::fmt_fixed(result.total_power_mw, 1) << " mW\n";
  for (std::size_t d = 0; d < result.dram_dies.size(); ++d) {
    std::cout << "  die " << d + 1 << " max/avg IR  : "
              << util::fmt_fixed(result.dram_dies[d].max_mv, 2) << " / "
              << util::fmt_fixed(result.dram_dies[d].avg_mv, 2) << " mV\n";
  }

  // Packaging upgrade 1: F2F bonding (PDN sharing between die pairs).
  pdn::PdnConfig f2f = baseline;
  f2f.bonding = pdn::BondingStyle::kF2F;
  const double ir_f2f = platform.analyze(f2f, "0-0-0-2").dram_max_mv;

  // Packaging upgrade 2: backside wire bonding.
  pdn::PdnConfig wb = baseline;
  wb.wire_bonding = true;
  const double ir_wb = platform.analyze(wb, "0-0-0-2").dram_max_mv;

  std::cout << "\nPackaging upgrades (same state):\n";
  std::cout << "  F2F+B2B bonding  : " << util::fmt_fixed(ir_f2f, 2) << " mV ("
            << util::fmt_percent(ir_f2f / result.dram_max_mv - 1.0) << ")\n";
  std::cout << "  wire bonding     : " << util::fmt_fixed(ir_wb, 2) << " mV ("
            << util::fmt_percent(ir_wb / result.dram_max_mv - 1.0) << ")\n";
  return 0;
}
