// Pareto front of IR drop vs cost: sweeps the co-optimizer's alpha across
// [0, 1] on one benchmark (default off-chip stacked DDR3) and prints the
// frontier of best designs -- the continuous version of the paper's Table 9
// three-point summary. Usage: pareto_sweep [off-chip|on-chip|wide-io|hmc]

#include <iostream>
#include <string>

#include "core/platform.hpp"
#include "opt/pareto.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

pdn3d::core::BenchmarkKind parse_kind(const std::string& name) {
  using pdn3d::core::BenchmarkKind;
  if (name == "on-chip") return BenchmarkKind::kStackedDdr3OnChip;
  if (name == "wide-io") return BenchmarkKind::kWideIo;
  if (name == "hmc") return BenchmarkKind::kHmc;
  return BenchmarkKind::kStackedDdr3OffChip;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdn3d;

  core::Platform platform(
      core::make_benchmark(parse_kind(argc > 1 ? argv[1] : "off-chip")));
  std::cout << "=== Pareto sweep: " << platform.benchmark().name << " ===\n";
  std::cout << "fitting regression models (one-time R-Mesh sampling)...\n";

  auto opt = platform.make_cooptimizer();
  const auto front = opt::pareto_front(opt, 11);

  util::Table t({"alpha", "design", "model IR (mV)", "R-Mesh IR (mV)", "cost"});
  for (const auto& point : front) {
    t.add_row({util::fmt_fixed(point.alpha, 1), point.optimum.config.summary(),
               util::fmt_fixed(point.optimum.predicted_ir_mv, 2),
               util::fmt_fixed(point.optimum.measured_ir_mv, 2),
               util::fmt_fixed(point.optimum.cost, 3)});
  }
  std::cout << t.render();
  std::cout << front.size()
            << " non-dominated designs trace the IR-vs-cost Pareto frontier of the space.\n";
  return 0;
}
