// Building beyond the paper's benchmarks with the library API: an 8-die
// stack of small dies with distributed TSVs and an RDL on every die. Shows
// direct use of the floorplan generator, the stack builder, the IR engine,
// the transient extension, and the exporters. Writes a SPICE deck, an
// IR-drop heatmap (PGM) and the die floorplan (CSV/DEF) to ./custom_stack_out.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "floorplan/dram_floorplan.hpp"
#include "floorplan/logic_floorplan.hpp"
#include "io/floorplan_writer.hpp"
#include "io/ir_map_writer.hpp"
#include "io/spice_writer.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"
#include "tech/presets.hpp"
#include "transient/decap.hpp"
#include "transient/simulator.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace pdn3d;

  // --- Structure: 8 small dies (4 Gb class), 16 banks each. -----------------
  floorplan::DramFloorplanSpec die_spec;
  die_spec.width_mm = 5.6;
  die_spec.height_mm = 5.2;
  die_spec.bank_cols = 4;
  die_spec.bank_rows = 4;

  pdn::StackSpec spec;
  spec.dram_spec = die_spec;
  spec.dram_fp = floorplan::make_dram_floorplan(die_spec);
  spec.logic_fp = floorplan::make_t2_floorplan();  // unused off-chip
  spec.num_dram_dies = 8;
  spec.tech = tech::low_voltage_technology();

  // --- Design point: distributed TSVs, RDL everywhere, F2F, wire bonds. -----
  pdn::PdnConfig cfg;
  cfg.m2_usage = 0.15;
  cfg.m3_usage = 0.30;
  cfg.tsv_count = 256;
  cfg.tsv_location = pdn::TsvLocation::kDistributed;
  cfg.logic_tsv_location = pdn::TsvLocation::kDistributed;
  cfg.bonding = pdn::BondingStyle::kF2F;
  cfg.rdl = pdn::RdlMode::kAllDies;
  cfg.wire_bonding = true;
  cfg.mounting = pdn::Mounting::kOffChip;

  const auto built = pdn::build_stack(spec, cfg);
  std::cout << "8-die custom stack: " << built.info.node_count << " mesh nodes, "
            << built.info.resistor_count << " resistors\n";

  irdrop::PowerBinding power;          // DDR3-class per-die power model
  power.dram.idle_mw = 22.0;           // smaller dies idle lower
  const irdrop::IrAnalyzer analyzer(built.model, spec.dram_fp, spec.logic_fp, power);

  // Worst state: top die reads an interleave pair at full activity.
  const auto state = power::parse_memory_state("0-0-0-0-0-0-0-2", die_spec, 1.0);
  const auto result = analyzer.analyze(state);
  std::cout << "state 0-...-0-2 max IR: " << util::fmt_fixed(result.dram_max_mv, 2)
            << " mV (die 8), die 1 sees " << util::fmt_fixed(result.dram_dies[0].max_mv, 2)
            << " mV\n";

  // Transient droop with and without the bond-wire decaps.
  const auto sinks = analyzer.injection(state);
  transient::DecapConfig decap;
  const transient::TransientSimulator sim(built.model,
                                          transient::assign_node_capacitance(built.model, decap),
                                          2e-9);
  const auto droop = sim.step_response(sinks, 400e-9);
  std::cout << "step droop: peak " << util::fmt_fixed(droop.peak_ir_mv, 2) << " mV, settles in "
            << util::fmt_fixed(droop.settle_ns, 0) << " ns to DC "
            << util::fmt_fixed(droop.dc_ir_mv, 2) << " mV\n";

  // --- Exports ---------------------------------------------------------------
  const std::filesystem::path out = "custom_stack_out";
  std::filesystem::create_directories(out);
  {
    std::ofstream os(out / "stack.sp");
    io::write_spice_netlist(os, built.model, sinks, {"custom 8-die stack"});
  }
  {
    std::ofstream os(out / "die8_m2_ir.pgm", std::ios::binary);
    const auto ir = analyzer.ir_map(state);
    io::write_ir_pgm(os, built.model, ir, spec.num_dram_dies - 1, 0);
  }
  {
    std::ofstream os(out / "die.csv");
    io::write_floorplan_csv(os, spec.dram_fp);
  }
  {
    std::ofstream os(out / "die.def");
    io::write_floorplan_def(os, spec.dram_fp);
  }
  std::cout << "wrote " << out.string() << "/{stack.sp, die8_m2_ir.pgm, die.csv, die.def}\n";
  return 0;
}
