// Design-space explorer: walks the paper's key design/packaging options on
// one benchmark and prints how the worst-case IR drop and cost move. Pass a
// benchmark name (off-chip | on-chip | wide-io | hmc); default off-chip.

#include <iostream>
#include <string>

#include "core/platform.hpp"
#include "cost/cost_model.hpp"
#include "util/table.hpp"
#include "util/string_util.hpp"

namespace {

pdn3d::core::BenchmarkKind parse_kind(const std::string& name) {
  using pdn3d::core::BenchmarkKind;
  if (name == "on-chip") return BenchmarkKind::kStackedDdr3OnChip;
  if (name == "wide-io") return BenchmarkKind::kWideIo;
  if (name == "hmc") return BenchmarkKind::kHmc;
  return BenchmarkKind::kStackedDdr3OffChip;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdn3d;

  const std::string which = argc > 1 ? argv[1] : "off-chip";
  core::Platform platform(core::make_benchmark(parse_kind(which)));
  const auto& bench = platform.benchmark();
  const pdn::PdnConfig base = bench.baseline;

  std::cout << "=== " << bench.name << " ===\n";
  std::cout << "default state " << bench.default_state << ", baseline "
            << base.summary() << "\n\n";

  util::Table t({"design variant", "max IR (mV)", "logic IR (mV)", "cost"});
  const auto add = [&](const std::string& label, const pdn::PdnConfig& cfg) {
    const auto r = platform.analyze(cfg, bench.default_state, bench.default_io_activity);
    t.add_row({label, util::fmt_fixed(r.dram_max_mv, 2), util::fmt_fixed(r.logic_max_mv, 2),
               util::fmt_fixed(cost::total_cost(cfg), 2)});
  };

  add("baseline", base);

  pdn::PdnConfig v = base;
  v.metal_usage_scale = 1.5;
  add("1.5x PDN metal", v);
  v.metal_usage_scale = 2.0;
  add("2x PDN metal", v);

  v = base;
  v.bonding = pdn::BondingStyle::kF2F;
  add("F2F+B2B bonding", v);

  v = base;
  v.wire_bonding = true;
  add("wire bonding", v);

  v = base;
  v.tsv_location = pdn::TsvLocation::kCenter;
  v.logic_tsv_location = pdn::TsvLocation::kCenter;
  add("center TSVs", v);

  v = base;
  v.tsv_location = pdn::TsvLocation::kDistributed;
  v.logic_tsv_location = pdn::TsvLocation::kDistributed;
  add("distributed TSVs", v);

  v = base;
  v.rdl = pdn::RdlMode::kBottomOnly;
  add("RDL (bottom)", v);

  v = base;
  v.tsv_count = 160;
  add("TC=160", v);
  v.tsv_count = 480;
  add("TC=480", v);

  if (base.mounting == pdn::Mounting::kOnChip) {
    v = base;
    v.dedicated_tsvs = false;
    add("shared (non-dedicated) TSVs", v);
    v.dedicated_tsvs = true;
    add("dedicated TSVs", v);
  }
  std::cout << t.render() << "\n";

  util::Table ts({"memory state", "io act", "max IR (mV)", "active-die power (mW)"});
  for (const char* s : {"0-0-0-2", "2-0-0-0", "0-0-2-2", "2-2-2-2", "0-2a-0-2a", "0-0-2a-2a"}) {
    const auto r = platform.analyze(base, s);
    const auto st = platform.parse_state(s);
    ts.add_row({s, util::fmt_fixed(st.io_activity, 2), util::fmt_fixed(r.dram_max_mv, 2),
                util::fmt_fixed(r.active_die_power_mw, 1)});
  }
  std::cout << ts.render();
  return 0;
}
