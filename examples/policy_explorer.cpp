// Policy explorer: reproduce the Section 5.2 study interactively. Runs the
// standard JEDEC policy against the IR-drop-aware FCFS and distributed-read
// policies on the stacked DDR3 benchmark, with a configurable IR constraint.
//
// Usage: policy_explorer [ir_constraint_mV]   (default 24)

#include <cstdlib>
#include <iostream>

#include "core/platform.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pdn3d;

  const double constraint = argc > 1 ? std::atof(argv[1]) : 24.0;
  core::Platform platform(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
  const pdn::PdnConfig cfg = platform.benchmark().baseline;

  const auto& lut = platform.lut(cfg);
  std::cout << "LUT worst-case state IR: " << util::fmt_fixed(lut.worst_case_mv(), 2)
            << " mV; constraint " << constraint << " mV\n\n";

  util::Table t({"policy", "runtime (us)", "bandwidth (reads/clk)", "max IR (mV)", "row hit",
                 "avg active banks"});
  const auto run = [&](const std::string& label, memctrl::PolicyConfig pc) {
    const auto r = platform.simulate(cfg, pc);
    t.add_row({label, r.feasible ? util::fmt_fixed(r.runtime_us, 2) : "infeasible",
               util::fmt_fixed(r.bandwidth_reads_per_clk, 3), util::fmt_fixed(r.max_ir_mv, 2),
               util::fmt_fixed(r.row_hit_fraction, 2), util::fmt_fixed(r.avg_active_banks, 2)});
  };

  run("Standard (tRRD/tFAW)", memctrl::standard_policy());
  run("IR-aware FCFS", memctrl::ir_aware_policy(constraint, memctrl::SchedulingKind::kFcfs));
  run("IR-aware DistR", memctrl::ir_aware_policy(constraint, memctrl::SchedulingKind::kDistR));
  std::cout << t.render();
  return 0;
}
