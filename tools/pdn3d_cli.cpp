// pdn3d command-line driver.
//
//   pdn3d info      <benchmark>
//   pdn3d analyze   <benchmark> [--state S] [--activity A] [design flags]
//   pdn3d lut       <benchmark> [design flags]
//   pdn3d simulate  <benchmark> [--policy standard|fcfs|distr] [--limit mV] [design flags]
//   pdn3d cooptimize <benchmark> [--alpha A]
//   pdn3d validate  <benchmark> [design flags]
//   pdn3d export    <benchmark> --out DIR [--state S] [design flags]
//
// Benchmarks: off-chip | on-chip | wide-io | hmc
// Design flags: --m2 PCT --m3 PCT --tc N --tl C|E|D --bd f2b|f2f
//               --rdl none|bottom|all --wb --dedicated --no-align --scale X
//
// Exit codes (see docs/ROBUSTNESS.md):
//   0  success
//   1  usage error (unknown command/benchmark/option)
//   2  input error (unreadable/corrupt tech file or trace, bad state string)
//   3  numerical failure (mesh validation errors, solver ladder exhausted)
//   4  infeasible (simulate: the IR constraint admits no memory state)

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/status.hpp"
#include "cost/cost_model.hpp"
#include "exec/thread_pool.hpp"
#include "irdrop/montecarlo.hpp"
#include "memctrl/trace.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "pdn/mesh_validator.hpp"
#include "tech/tech_file.hpp"
#include "transient/decap.hpp"
#include "transient/simulator.hpp"
#include "io/floorplan_writer.hpp"
#include "io/ir_map_writer.hpp"
#include "io/spice_writer.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace pdn3d;

// Structured exit codes, documented in docs/ROBUSTNESS.md.
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitInputError = 2;
constexpr int kExitNumerical = 3;
constexpr int kExitInfeasible = 4;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: pdn3d <command> <benchmark> [options]\n"
      "\n"
      "commands:\n"
      "  info        print the benchmark's configuration and baseline design\n"
      "  analyze     IR-drop analysis of one memory state\n"
      "  lut         print the memory-state IR look-up table\n"
      "  simulate    run the memory-controller simulation\n"
      "  cooptimize  co-optimize design+packaging at an alpha\n"
      "  validate    numerical-health check of the R-Mesh (exit 0 = healthy)\n"
      "  profile     run analyze/lut/simulate/cooptimize and print hot spans\n"
      "  report      per-block hotspot report for one die\n"
      "  montecarlo  IR-drop distribution over random memory states\n"
      "  droop       transient (RC) droop of a memory-state step\n"
      "  export      write SPICE deck, IR maps, and floorplans to a directory\n"
      "\n"
      "exit codes: 0 ok | 1 usage | 2 input error | 3 numerical failure |\n"
      "            4 infeasible constraint (simulate)\n"
      "\n"
      "benchmarks: off-chip | on-chip | wide-io | hmc\n"
      "\n"
      "options:\n"
      "  --state S        memory state, e.g. 0-0-0-2 or 0-0-2b-2a\n"
      "  --activity A     I/O activity in [0,1] (default: 1/active dies)\n"
      "  --policy P       standard | fcfs | distr   (simulate)\n"
      "  --limit MV       IR constraint in mV        (simulate, default 24)\n"
      "  --alpha A        objective exponent in [0,1] (cooptimize, default 0.3)\n"
      "  --out DIR        output directory            (export)\n"
      "  --tech FILE      load a technology file (any command)\n"
      "  --trace FILE     replay a request trace      (simulate)\n"
      "  --samples N      Monte Carlo samples          (montecarlo, default 200)\n"
      "  --die N          die to report (1-based)      (report, default top die)\n"
      "  --decap NF       per-tap decap in nF          (droop, default 2)\n"
      "  --top N          hot spans to print           (profile, default 15)\n"
      "  --threads N      worker threads for parallel sweeps (montecarlo, lut,\n"
      "                   cooptimize, profile; also: PDN3D_THREADS env var;\n"
      "                   default: hardware concurrency). Results are identical\n"
      "                   at any thread count.\n"
      "  --report FILE    write a machine-readable JSON run report (any command;\n"
      "                   see docs/OBSERVABILITY.md for the schema)\n"
      "  --verbose        log at debug level (also: PDN3D_LOG_LEVEL env var)\n"
      "  --quiet          log errors only\n"
      "  --m2 PCT --m3 PCT --tc N --tl C|E|D --bd f2b|f2f\n"
      "  --rdl none|bottom|all --wb --dedicated --no-align --scale X\n";
  std::exit(kExitUsage);
}

core::BenchmarkKind parse_benchmark(const std::string& name) {
  if (name == "off-chip") return core::BenchmarkKind::kStackedDdr3OffChip;
  if (name == "on-chip") return core::BenchmarkKind::kStackedDdr3OnChip;
  if (name == "wide-io") return core::BenchmarkKind::kWideIo;
  if (name == "hmc") return core::BenchmarkKind::kHmc;
  usage("unknown benchmark '" + name + "'");
}

struct Args {
  std::string command;
  std::string benchmark;
  std::map<std::string, std::string> options;  // --key value
  std::vector<std::string> flags;              // --key (no value)

  [[nodiscard]] bool has_flag(const std::string& f) const {
    for (const auto& x : flags) {
      if (x == f) return true;
    }
    return options.count(f) > 0;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::atof(v->c_str()) : fallback;
  }
};

Args parse_args(int argc, char** argv) {
  if (argc < 3) usage();
  Args a;
  a.command = argv[1];
  a.benchmark = argv[2];
  const std::vector<std::string> value_opts = {"--state", "--activity", "--policy", "--limit",
                                               "--alpha", "--out",      "--m2",     "--m3",
                                               "--tc",    "--tl",       "--bd",     "--rdl",
                                               "--scale", "--tech",     "--trace",  "--samples",
                                               "--decap", "--die",      "--report", "--top",
                                               "--threads"};
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool takes_value =
        std::find(value_opts.begin(), value_opts.end(), arg) != value_opts.end();
    if (takes_value) {
      if (i + 1 >= argc) usage("missing value for " + arg);
      a.options[arg] = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      a.flags.push_back(arg);
    } else {
      usage("unexpected argument '" + arg + "'");
    }
  }
  return a;
}

pdn::PdnConfig apply_design_flags(pdn::PdnConfig cfg, const Args& a) {
  if (const auto v = a.get("--m2")) cfg.m2_usage = std::atof(v->c_str()) / 100.0;
  if (const auto v = a.get("--m3")) cfg.m3_usage = std::atof(v->c_str()) / 100.0;
  if (const auto v = a.get("--tc")) cfg.tsv_count = std::atoi(v->c_str());
  if (const auto v = a.get("--tl")) {
    const std::string tl = util::to_lower(*v);
    if (tl == "c") cfg.tsv_location = pdn::TsvLocation::kCenter;
    else if (tl == "e") cfg.tsv_location = pdn::TsvLocation::kEdge;
    else if (tl == "d") cfg.tsv_location = pdn::TsvLocation::kDistributed;
    else usage("bad --tl");
    if (cfg.rdl == pdn::RdlMode::kNone) cfg.logic_tsv_location = cfg.tsv_location;
  }
  if (const auto v = a.get("--bd")) {
    const std::string bd = util::to_lower(*v);
    if (bd == "f2b") cfg.bonding = pdn::BondingStyle::kF2B;
    else if (bd == "f2f") cfg.bonding = pdn::BondingStyle::kF2F;
    else usage("bad --bd");
  }
  if (const auto v = a.get("--rdl")) {
    const std::string r = util::to_lower(*v);
    if (r == "none") cfg.rdl = pdn::RdlMode::kNone;
    else if (r == "bottom") cfg.rdl = pdn::RdlMode::kBottomOnly;
    else if (r == "all") cfg.rdl = pdn::RdlMode::kAllDies;
    else usage("bad --rdl");
  }
  if (a.has_flag("--wb")) cfg.wire_bonding = true;
  if (a.has_flag("--dedicated")) cfg.dedicated_tsvs = true;
  if (a.has_flag("--no-align")) cfg.align_tsvs_to_c4 = false;
  if (const auto v = a.get("--scale")) cfg.metal_usage_scale = std::atof(v->c_str());
  return cfg;
}

int cmd_info(core::Platform& p) {
  const auto& b = p.benchmark();
  std::cout << b.name << "\n";
  std::cout << "  DRAM die       : " << b.stack.dram_fp.width() << " x "
            << b.stack.dram_fp.height() << " mm, " << b.stack.dram_fp.bank_count()
            << " banks, " << b.stack.num_dram_dies << " dies\n";
  std::cout << "  logic die      : " << b.stack.logic_fp.width() << " x "
            << b.stack.logic_fp.height() << " mm (" << pdn::to_string(b.baseline.mounting)
            << ")\n";
  std::cout << "  channels       : " << b.sim.channels << ", tCK " << b.sim.timing.tck_ns
            << " ns, VDD " << b.stack.tech.dram.vdd << " V\n";
  std::cout << "  default state  : " << b.default_state << "\n";
  std::cout << "  baseline       : " << b.baseline.summary() << "\n";
  std::cout << "  baseline cost  : " << util::fmt_fixed(cost::total_cost(b.baseline), 3) << "\n";
  std::cout << "  paper baseline : " << b.paper_baseline_ir_mv << " mV\n";
  return 0;
}

int cmd_analyze(core::Platform& p, const Args& a) {
  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const std::string state = a.get("--state").value_or(p.benchmark().default_state);
  const double act = a.get_double("--activity", -1.0);
  // One-shot command: build a fresh analyzer on the paper's IC-PCG R-Mesh
  // path rather than Platform's many-state cache (whose factor-once banded
  // solver only pays off across LUT/controller sweeps).
  const auto& bench = p.benchmark();
  const auto built = pdn::build_stack(bench.stack, cfg);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  power.dram_scale = bench.power_scale;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                    power);
  const auto r = analyzer.analyze(p.parse_state(state, act));
  std::cout << "design : " << cfg.summary() << "\n";
  std::cout << "state  : " << state << " @ activity "
            << util::fmt_fixed(p.parse_state(state, act).io_activity, 2) << "\n";
  std::cout << "cost   : " << util::fmt_fixed(cost::total_cost(cfg), 3) << "\n";
  util::Table t({"die", "max IR (mV)", "avg IR (mV)"});
  for (std::size_t d = 0; d < r.dram_dies.size(); ++d) {
    t.add_row({"DRAM" + std::to_string(d + 1), util::fmt_fixed(r.dram_dies[d].max_mv, 2),
               util::fmt_fixed(r.dram_dies[d].avg_mv, 2)});
  }
  std::cout << t.render();
  std::cout << "max DRAM IR drop : " << util::fmt_fixed(r.dram_max_mv, 2) << " mV\n";
  if (r.logic_max_mv > 0.0) {
    std::cout << "logic self-noise : " << util::fmt_fixed(r.logic_max_mv, 2) << " mV\n";
  }
  std::cout << "stack power      : " << util::fmt_fixed(r.total_power_mw, 1) << " mW\n";
  return 0;
}

int cmd_lut(core::Platform& p, const Args& a) {
  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const auto& lut = p.lut(cfg);
  std::cout << "IR LUT for " << cfg.summary() << " (" << lut.size() << " states)\n";
  util::Table t({"state", "max IR (mV)"});
  std::vector<int> counts(static_cast<std::size_t>(lut.die_count()), 0);
  const int radix = lut.max_per_die() + 1;
  const std::size_t total = lut.size();
  for (std::size_t key = 0; key < total; ++key) {
    std::size_t k = key;
    std::string name;
    for (int d = 0; d < lut.die_count(); ++d) {
      counts[static_cast<std::size_t>(d)] = static_cast<int>(k % radix);
      k /= static_cast<std::size_t>(radix);
      if (d > 0) name += '-';
      name += std::to_string(counts[static_cast<std::size_t>(d)]);
    }
    t.add_row({name, util::fmt_fixed(lut.max_ir_mv(counts), 2)});
  }
  std::cout << t.render();
  const auto worst = lut.worst_case_state();
  std::cout << "worst state: ";
  for (std::size_t i = 0; i < worst.size(); ++i) {
    std::cout << (i ? "-" : "") << worst[i];
  }
  std::cout << " = " << util::fmt_fixed(lut.worst_case_mv(), 2) << " mV\n";
  return 0;
}

int cmd_simulate(core::Platform& p, const Args& a) {
  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const std::string policy = a.get("--policy").value_or("distr");
  const double limit = a.get_double("--limit", 24.0);
  memctrl::PolicyConfig pc;
  if (policy == "standard") {
    pc = memctrl::standard_policy();
  } else if (policy == "fcfs") {
    pc = memctrl::ir_aware_policy(limit, memctrl::SchedulingKind::kFcfs);
  } else if (policy == "distr") {
    pc = memctrl::ir_aware_policy(limit, memctrl::SchedulingKind::kDistR);
  } else {
    usage("bad --policy");
  }
  memctrl::SimResult r;
  if (const auto trace_path = a.get("--trace")) {
    std::ifstream tf(*trace_path);
    if (!tf) {
      std::cerr << "error: cannot open trace '" << *trace_path << "'\n";
      return kExitInputError;
    }
    auto reqs = memctrl::read_trace(tf);
    const auto& sim_cfg = p.benchmark().sim;
    const std::string problem =
        memctrl::validate_trace(reqs, sim_cfg.dies, sim_cfg.banks_per_die);
    if (!problem.empty()) {
      std::cerr << "error: trace invalid: " << problem << "\n";
      return kExitInputError;
    }
    r = p.simulate(cfg, pc, std::move(reqs));
  } else {
    r = p.simulate(cfg, pc);
  }
  std::cout << "design    : " << cfg.summary() << "\n";
  std::cout << "policy    : " << policy << (policy != "standard" ? " @ " + util::fmt_fixed(limit, 1) + " mV" : "")
            << "\n";
  if (!r.feasible) {
    std::cout << "INFEASIBLE: the IR constraint admits no memory state\n";
    return kExitInfeasible;
  }
  std::cout << "runtime   : " << util::fmt_fixed(r.runtime_us, 2) << " us (" << r.cycles
            << " cycles)\n";
  std::cout << "bandwidth : " << util::fmt_fixed(r.bandwidth_reads_per_clk, 3) << " reads/clk\n";
  std::cout << "max IR    : " << util::fmt_fixed(r.max_ir_mv, 2) << " mV\n";
  std::cout << "row hits  : " << util::fmt_percent(r.row_hit_fraction, 1) << ", avg active banks "
            << util::fmt_fixed(r.avg_active_banks, 2) << "\n";
  return 0;
}

int cmd_cooptimize(core::Platform& p, const Args& a) {
  const double alpha = a.get_double("--alpha", 0.3);
  auto opt = p.make_cooptimizer();
  std::cout << "sampling the design space with the R-Mesh...\n";
  const auto best = opt.optimize(alpha);
  std::cout << "alpha " << alpha << " optimum:\n";
  std::cout << "  design  : " << best.config.summary() << "\n";
  std::cout << "  model IR: " << util::fmt_fixed(best.predicted_ir_mv, 2) << " mV\n";
  std::cout << "  R-Mesh  : " << util::fmt_fixed(best.measured_ir_mv, 2) << " mV\n";
  std::cout << "  cost    : " << util::fmt_fixed(best.cost, 3) << "\n";
  std::cout << "  fit     : worst RMSE " << util::fmt_fixed(opt.worst_rmse(), 3) << " mV, R^2 "
            << util::fmt_fixed(opt.worst_r_squared(), 4) << "\n";
  for (const auto& s : opt.skipped_points()) {
    std::cout << "  skipped : " << s.config.summary() << " -- " << s.reason << "\n";
  }
  return 0;
}

int cmd_validate(core::Platform& p, const Args& a) {
  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const auto& bench = p.benchmark();
  std::cout << "design : " << cfg.summary() << "\n";

  pdn::BuiltStack built;
  try {
    built = pdn::build_stack(bench.stack, cfg);
  } catch (const std::exception& e) {
    std::cerr << "error: stack build failed: " << e.what() << "\n";
    return kExitInputError;
  }
  std::cout << "mesh   : " << built.model.node_count() << " nodes, "
            << built.model.resistors().size() << " resistors, " << built.model.taps().size()
            << " supply taps\n";

  core::ValidationReport report = pdn::validate_stack_model(built.model);
  if (report.ok()) {
    // Mesh is sound; check the default state's injection and run a verified
    // probe solve through the escalation ladder.
    irdrop::PowerBinding power;
    power.dram = bench.dram_power;
    power.logic = bench.logic_power;
    power.dram_scale = bench.power_scale;
    const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                      power);
    const auto state = p.parse_state(bench.default_state, bench.default_io_activity);
    const auto sinks = analyzer.injection(state);
    report.merge(pdn::validate_injection(built.model, sinks));
    if (report.ok()) {
      const auto outcome = analyzer.solver().solve(irdrop::SolveRequest{.sinks = sinks});
      if (outcome.ok()) {
        std::cout << "solve  : " << irdrop::to_string(outcome.kind_used) << ", "
                  << outcome.iterations << " iterations, relative residual "
                  << outcome.rel_residual;
        if (outcome.escalations > 0) {
          std::cout << " (" << outcome.escalations << " rung escalation(s))";
        }
        std::cout << "\n";
      } else {
        std::cerr << "error: probe solve failed: " << outcome.status.to_string() << "\n";
        return kExitNumerical;
      }
    }
  }

  for (const auto& issue : report.issues()) {
    std::cerr << core::to_string(issue.severity) << " [" << issue.check << "] " << issue.message
              << "\n";
  }
  if (!report.ok()) {
    std::cerr << "validation FAILED: " << report.error_count() << " error(s), "
              << report.warning_count() << " warning(s)\n";
    return kExitNumerical;
  }
  std::cout << "validation passed";
  if (report.warning_count() > 0) std::cout << " (" << report.warning_count() << " warning(s))";
  std::cout << "\n";
  return kExitOk;
}

int cmd_report(core::Platform& p, const Args& a) {
  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const auto& bench = p.benchmark();
  const std::string state_text = a.get("--state").value_or(bench.default_state);
  const auto state = p.parse_state(state_text, a.get_double("--activity", -1.0));
  const int die =
      static_cast<int>(a.get_double("--die", bench.stack.num_dram_dies)) - 1;  // 1-based

  const auto built = pdn::build_stack(bench.stack, cfg);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  power.dram_scale = bench.power_scale;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                    power);
  const auto report = analyzer.block_report(state, die);

  std::cout << "design : " << cfg.summary() << "\n";
  std::cout << "state  : " << state_text << ", DRAM die " << die + 1 << " (hotspots first)\n";
  util::Table t({"block", "type", "max IR (mV)", "avg IR (mV)"});
  for (const auto& entry : report) {
    t.add_row({entry.block->name, floorplan::to_string(entry.block->type),
               util::fmt_fixed(entry.max_mv, 2), util::fmt_fixed(entry.avg_mv, 2)});
  }
  std::cout << t.render();
  return 0;
}

int cmd_montecarlo(core::Platform& p, const Args& a) {
  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const auto& bench = p.benchmark();
  const auto built = pdn::build_stack(bench.stack, cfg);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  power.dram_scale = bench.power_scale;
  irdrop::MonteCarloConfig mc;
  mc.samples = static_cast<int>(a.get_double("--samples", 200));
  // The sweep re-solves one matrix --samples times: declare the access
  // pattern so the analyzer gets the cached sparse-direct factor.
  const irdrop::IrAnalyzer analyzer(
      built.model, bench.stack.dram_fp, bench.stack.logic_fp, power,
      irdrop::select_solver_kind(static_cast<std::size_t>(std::max(mc.samples, 0))));
  const auto r = irdrop::sample_ir_distribution(analyzer, bench.stack.dram_spec, mc);
  const double worst = p.measure_ir_mv(cfg);
  std::cout << "design : " << cfg.summary() << "\n";
  std::cout << "samples: " << r.samples << "\n";
  util::Table t({"statistic", "IR drop (mV)"});
  t.add_row({"mean", util::fmt_fixed(r.mean_mv, 2)});
  t.add_row({"p50", util::fmt_fixed(r.p50_mv, 2)});
  t.add_row({"p95", util::fmt_fixed(r.p95_mv, 2)});
  t.add_row({"p99", util::fmt_fixed(r.p99_mv, 2)});
  t.add_row({"sampled max", util::fmt_fixed(r.max_mv, 2)});
  t.add_row({"design worst case", util::fmt_fixed(worst, 2)});
  std::cout << t.render();
  return 0;
}

int cmd_droop(core::Platform& p, const Args& a) {
  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const auto& bench = p.benchmark();
  const auto built = pdn::build_stack(bench.stack, cfg);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  power.dram_scale = bench.power_scale;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                    power);
  const std::string state_text = a.get("--state").value_or(bench.default_state);
  const auto state = p.parse_state(state_text, a.get_double("--activity", -1.0));
  const auto sinks = analyzer.injection(state);

  transient::DecapConfig decap;
  decap.tap_decap_nf = a.get_double("--decap", 2.0);
  const transient::TransientSimulator sim(
      built.model, transient::assign_node_capacitance(built.model, decap), 1e-9);
  const auto r = sim.step_response(sinks, 400e-9);
  std::cout << "design : " << cfg.summary() << "\n";
  std::cout << "state  : " << state_text << ", tap decap " << decap.tap_decap_nf << " nF\n";
  std::cout << "DC IR  : " << util::fmt_fixed(r.dc_ir_mv, 2) << " mV\n";
  std::cout << "peak   : " << util::fmt_fixed(r.peak_ir_mv, 2) << " mV\n";
  std::cout << "settle : " << util::fmt_fixed(r.settle_ns, 1) << " ns (to 2% of DC)\n";
  util::Table t({"t (ns)", "worst DRAM droop (mV)"});
  for (std::size_t k = 0; k < r.time_ns.size(); k += std::max<std::size_t>(1, r.time_ns.size() / 12)) {
    t.add_row({util::fmt_fixed(r.time_ns[k], 1), util::fmt_fixed(r.worst_ir_mv[k], 2)});
  }
  std::cout << t.render();
  return 0;
}

int cmd_profile(core::Platform& p, const Args& a) {
  // Exercise the full pipeline on the baseline design, then print where the
  // wall time went. Each stage gets a top-level span so the table groups the
  // library's internal spans under a readable root.
  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const std::size_t top_n = static_cast<std::size_t>(a.get_double("--top", 15.0));

  std::cout << "profiling " << p.benchmark().name << " (analyze, lut, simulate, cooptimize)\n";
  {
    PDN3D_TRACE_SPAN("profile/analyze");
    const auto r = p.analyze(cfg, p.benchmark().default_state, -1.0);
    std::cout << "  analyze    : max IR " << util::fmt_fixed(r.dram_max_mv, 2) << " mV\n";
  }
  {
    PDN3D_TRACE_SPAN("profile/lut");
    const auto& lut = p.lut(cfg);
    std::cout << "  lut        : " << lut.size() << " states, worst "
              << util::fmt_fixed(lut.worst_case_mv(), 2) << " mV\n";
  }
  {
    PDN3D_TRACE_SPAN("profile/simulate");
    const auto r = p.simulate(cfg, memctrl::ir_aware_policy(24.0, memctrl::SchedulingKind::kDistR));
    std::cout << "  simulate   : " << util::fmt_fixed(r.runtime_us, 2) << " us, "
              << (r.feasible ? "feasible" : "INFEASIBLE") << "\n";
  }
  {
    PDN3D_TRACE_SPAN("profile/cooptimize");
    auto opt = p.make_cooptimizer();
    const auto best = opt.optimize(0.3);
    std::cout << "  cooptimize : " << best.config.summary() << " @ "
              << util::fmt_fixed(best.measured_ir_mv, 2) << " mV\n";
  }
  std::cout << "\n" << obs::TraceStore::instance().profile_table(top_n);
  return 0;
}

int cmd_export(core::Platform& p, const Args& a) {
  const auto out_opt = a.get("--out");
  if (!out_opt) usage("export requires --out DIR");
  const std::filesystem::path out = *out_opt;
  std::filesystem::create_directories(out);

  const auto cfg = apply_design_flags(p.benchmark().baseline, a);
  const std::string state_text = a.get("--state").value_or(p.benchmark().default_state);
  const auto state = p.parse_state(state_text, a.get_double("--activity", -1.0));

  const auto& bench = p.benchmark();
  const auto built = pdn::build_stack(bench.stack, cfg);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  power.dram_scale = bench.power_scale;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                    power);
  const auto sinks = analyzer.injection(state);
  const auto ir = analyzer.ir_map(state);

  {
    std::ofstream os(out / "stack.sp");
    io::write_spice_netlist(os, built.model, sinks, {bench.name + " " + cfg.summary()});
  }
  {
    std::ofstream os(out / "ir_map.csv");
    io::write_ir_csv(os, built.model, ir);
  }
  for (int d = 0; d < built.model.dram_die_count(); ++d) {
    std::ofstream os(out / ("dram" + std::to_string(d + 1) + "_ir.pgm"), std::ios::binary);
    io::write_ir_pgm(os, built.model, ir, d, 0);
  }
  {
    std::ofstream os(out / "dram_die.csv");
    io::write_floorplan_csv(os, bench.stack.dram_fp);
  }
  {
    std::ofstream os(out / "dram_die.def");
    io::write_floorplan_def(os, bench.stack.dram_fp);
  }
  std::cout << "wrote " << out.string()
            << "/{stack.sp, ir_map.csv, dram*_ir.pgm, dram_die.csv, dram_die.def}\n";
  return 0;
}

int dispatch(core::Platform& platform, const Args& args) {
  if (args.command == "info") return cmd_info(platform);
  if (args.command == "analyze") return cmd_analyze(platform, args);
  if (args.command == "lut") return cmd_lut(platform, args);
  if (args.command == "simulate") return cmd_simulate(platform, args);
  if (args.command == "cooptimize") return cmd_cooptimize(platform, args);
  if (args.command == "validate") return cmd_validate(platform, args);
  if (args.command == "profile") return cmd_profile(platform, args);
  if (args.command == "report") return cmd_report(platform, args);
  if (args.command == "montecarlo") return cmd_montecarlo(platform, args);
  if (args.command == "droop") return cmd_droop(platform, args);
  if (args.command == "export") return cmd_export(platform, args);
  usage("unknown command '" + args.command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.has_flag("--verbose")) util::set_log_level(util::LogLevel::kDebug);
  if (args.has_flag("--quiet")) util::set_log_level(util::LogLevel::kError);
  if (const auto v = args.get("--threads")) {
    const int n = std::atoi(v->c_str());
    if (n < 1) usage("--threads requires a positive integer");
    // Overrides PDN3D_THREADS; every sweep below sizes its pool from this.
    exec::set_default_thread_count(static_cast<std::size_t>(n));
  }
  core::Benchmark benchmark = core::make_benchmark(parse_benchmark(args.benchmark));

  int rc = kExitOk;
  if (const auto tech_path = args.get("--tech")) {
    std::ifstream tf(*tech_path);
    if (!tf) {
      std::cerr << "error: cannot open technology file '" << *tech_path << "'\n";
      rc = kExitInputError;
    } else {
      try {
        benchmark.stack.tech = tech::read_technology(tf);
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = kExitInputError;
      }
    }
  }

  if (rc == kExitOk) {
    core::Platform platform(std::move(benchmark));
    try {
      rc = dispatch(platform, args);
    } catch (const core::ValidationError& e) {
      std::cerr << "error: mesh validation failed:\n" << e.report().to_string() << "\n";
      rc = kExitNumerical;
    } catch (const core::NumericalError& e) {
      std::cerr << "error: " << e.status().to_string() << "\n";
      rc = kExitNumerical;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      rc = kExitInputError;
    }
  }

  // The report is written even after a failed command: a run that escalated
  // or exhausted the ladder is exactly the run worth dissecting.
  if (const auto report_path = args.get("--report")) {
    obs::RunReportOptions opts;
    opts.command = args.command;
    opts.benchmark = args.benchmark;
    opts.argv.assign(argv, argv + argc);
    const core::Status st = obs::write_run_report(*report_path, opts);
    if (!st.is_ok()) {
      std::cerr << "error: " << st.to_string() << "\n";
      if (rc == kExitOk) rc = kExitInputError;
    }
  }
  return rc;
}
