// pdn3d command-line driver.
//
//   pdn3d info      <benchmark>
//   pdn3d analyze   <benchmark> [--state S] [--activity A] [design flags]
//   pdn3d lut       <benchmark> [design flags]
//   pdn3d simulate  <benchmark> [--policy standard|fcfs|distr] [--limit mV] [design flags]
//   pdn3d cooptimize <benchmark> [--alpha A]
//   pdn3d validate  <benchmark> [design flags]
//   pdn3d em-check  <benchmark> [--state S] [--activity A] [design flags]
//   pdn3d export    <benchmark> --out DIR [--state S] [design flags]
//   pdn3d serve     [--socket PATH] [--queue N] [--deadline MS] [--threads N]
//
// Benchmarks: off-chip | on-chip | wide-io | hmc
// Design flags: --m2 PCT --m3 PCT --tc N --tl C|E|D --bd f2b|f2f
//               --rdl none|bottom|all --wb --dedicated --no-align --scale X
//               --em --em-wire-limit J --em-tsv-limit J --em-temp C
//
// The pure-evaluation commands (analyze, lut, montecarlo, cooptimize,
// validate, em-check) are thin shells over the pdn3d::api facade: they build an
// EvaluateRequest and print EvaluateResult::output verbatim, so their output
// is byte-identical to the same request served by `pdn3d serve`
// (docs/API.md). The streaming/simulation commands keep their own CLI paths.
//
// Every option goes through a typed parser with a range check; a malformed
// value (e.g. `--m2 abc`) is a usage error, exit code 1.
//
// Exit codes (see docs/ROBUSTNESS.md):
//   0  success
//   1  usage error (unknown command/benchmark/option, malformed option value)
//   2  input error (unreadable/corrupt tech file or trace, bad state string)
//   3  numerical failure (mesh validation errors, solver ladder exhausted)
//   4  infeasible (simulate: the IR constraint admits no memory state)

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/options.hpp"
#include "core/platform.hpp"
#include "core/status.hpp"
#include "cost/cost_model.hpp"
#include "exec/thread_pool.hpp"
#include "faults/faults.hpp"
#include "memctrl/trace.hpp"
#include "obs/event_log.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "util/log.hpp"
#include "tech/tech_file.hpp"
#include "transient/decap.hpp"
#include "transient/simulator.hpp"
#include "io/floorplan_writer.hpp"
#include "io/ir_map_writer.hpp"
#include "io/spice_writer.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace pdn3d;

// Structured exit codes, documented in docs/ROBUSTNESS.md.
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitInputError = 2;
constexpr int kExitNumerical = 3;
constexpr int kExitInfeasible = 4;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: pdn3d <command> <benchmark> [options]\n"
      "       pdn3d serve [options]\n"
      "\n"
      "commands:\n"
      "  info        print the benchmark's configuration and baseline design\n"
      "  analyze     IR-drop analysis of one memory state\n"
      "  lut         print the memory-state IR look-up table\n"
      "  simulate    run the memory-controller simulation\n"
      "  cooptimize  co-optimize design+packaging at an alpha\n"
      "  validate    numerical-health check of the R-Mesh (exit 0 = healthy)\n"
      "  em-check    branch currents, EM current-density limits, Black MTTF\n"
      "  profile     run analyze/lut/simulate/cooptimize and print hot spans\n"
      "  report      per-block hotspot report for one die\n"
      "  montecarlo  IR-drop distribution over random memory states\n"
      "  droop       transient (RC) droop of a memory-state step\n"
      "  export      write SPICE deck, IR maps, and floorplans to a directory\n"
      "  serve       batch evaluation service: NDJSON requests on stdin (or a\n"
      "              Unix socket), one JSON response per line (docs/SERVICE.md)\n"
      "\n"
      "exit codes: 0 ok | 1 usage | 2 input error | 3 numerical failure |\n"
      "            4 infeasible constraint (simulate)\n"
      "\n"
      "benchmarks: off-chip | on-chip | wide-io | hmc\n"
      "\n"
      "options:\n"
      "  --state S        memory state, e.g. 0-0-0-2 or 0-0-2b-2a\n"
      "  --activity A     I/O activity in [0,1] (default: 1/active dies)\n"
      "  --policy P       standard | fcfs | distr   (simulate)\n"
      "  --limit MV       IR constraint in mV        (simulate, default 24)\n"
      "  --alpha A        objective exponent in [0,1] (cooptimize, default 0.3)\n"
      "  --out DIR        output directory            (export)\n"
      "  --tech FILE      load a technology file (any command; serve: with --bench)\n"
      "  --trace FILE     replay a request trace      (simulate)\n"
      "  --samples N      Monte Carlo samples          (montecarlo, default 200)\n"
      "  --checkpoint F   crash-safe sweep checkpoint file (montecarlo, lut,\n"
      "                   cooptimize); written atomically as the sweep runs\n"
      "  --resume         load completed entries from --checkpoint before the\n"
      "                   sweep; resumed output is bitwise identical\n"
      "  --die N          die to report (1-based)      (report, default top die)\n"
      "  --decap NF       per-tap decap in nF          (droop, default 2)\n"
      "  --top N          hot spans to print           (profile, default 15)\n"
      "  --threads N      worker threads for parallel sweeps (montecarlo, lut,\n"
      "                   cooptimize, profile; serve: worker count; also the\n"
      "                   PDN3D_THREADS env var; default: hardware concurrency).\n"
      "                   Results are identical at any thread count.\n"
      "  --socket PATH    serve: also listen on a Unix-domain socket\n"
      "  --queue N        serve: admission queue capacity (default 64)\n"
      "  --deadline MS    serve: default per-request deadline (0 = none)\n"
      "  --max-cost N     serve: shed load (typed `overloaded` error) once the\n"
      "                   estimated cost of admitted-but-unfinished requests\n"
      "                   would exceed N (0 = unlimited)\n"
      "  --watchdog MS    serve: cancel an evaluation running longer than MS and\n"
      "                   answer a typed `timeout` error (0 = off)\n"
      "  --slow-ms MS     serve: log a `serve.slow_request` event with the\n"
      "                   request's span tree when an evaluation runs longer\n"
      "                   than MS (0 = off)\n"
      "  --cache-entries N serve: result-cache capacity in entries, keyed by the\n"
      "                   canonical request fingerprint (default 256, 0 = off)\n"
      "  --cache-bypass   serve: every request bypasses the result cache,\n"
      "                   overriding per-request `cache` fields\n"
      "  --bench B        serve: benchmark the --tech override applies to\n"
      "  --report FILE    write a machine-readable JSON run report (any command;\n"
      "                   see docs/OBSERVABILITY.md for the schema)\n"
      "  --verbose        log at debug level (also: PDN3D_LOG_LEVEL env var)\n"
      "  --quiet          log errors only\n"
      "  --log-format F   stderr log format: text | json (NDJSON events; also\n"
      "                   the PDN3D_LOG_FORMAT env var; default text)\n"
      "  --m2 PCT --m3 PCT --tc N --tl C|E|D --bd f2b|f2f\n"
      "  --rdl none|bottom|all --wb --dedicated --no-align --scale X\n"
      "  --em             enforce EM limits (violations -> exit 3; any command\n"
      "                   through the facade, also the cooptimize constraint)\n"
      "  --em-wire-limit J --em-tsv-limit J  EM current-density limits (MA/cm^2)\n"
      "  --em-temp C      junction temperature for Black's MTTF (default 85)\n";
  std::exit(kExitUsage);
}

struct Args {
  std::string command;
  std::string benchmark;
  std::map<std::string, std::string> options;  // --key value
  std::vector<std::string> flags;              // --key (no value)

  [[nodiscard]] bool has_flag(const std::string& f) const {
    for (const auto& x : flags) {
      if (x == f) return true;
    }
    return options.count(f) > 0;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }
};

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.command = argv[1];
  int first_opt = 3;
  if (a.command == "serve") {
    first_opt = 2;  // serve takes options only, no benchmark positional
  } else if (argc < 3) {
    usage();
  } else {
    a.benchmark = argv[2];
  }
  const std::vector<std::string> value_opts = {
      "--state", "--activity", "--policy", "--limit",  "--alpha",   "--out",
      "--m2",    "--m3",       "--tc",     "--tl",     "--bd",      "--rdl",
      "--scale", "--tech",     "--trace",  "--samples", "--decap",  "--die",
      "--report", "--top",     "--threads", "--socket", "--queue",  "--deadline",
      "--bench", "--checkpoint", "--max-cost", "--watchdog", "--slow-ms", "--log-format",
      "--cache-entries", "--em-wire-limit", "--em-tsv-limit", "--em-temp"};
  const std::vector<std::string> known_flags = {"--wb",      "--dedicated", "--no-align",
                                               "--verbose", "--quiet",     "--test-ops",
                                               "--resume",  "--cache-bypass", "--em"};
  for (int i = first_opt; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool takes_value =
        std::find(value_opts.begin(), value_opts.end(), arg) != value_opts.end();
    if (takes_value) {
      if (i + 1 >= argc) usage("missing value for " + arg);
      a.options[arg] = argv[++i];
    } else if (std::find(known_flags.begin(), known_flags.end(), arg) != known_flags.end()) {
      a.flags.push_back(arg);
    } else if (arg.rfind("--", 0) == 0) {
      usage("unknown option '" + arg + "'");
    } else {
      usage("unexpected argument '" + arg + "'");
    }
  }
  return a;
}

// Typed option accessors: every value goes through the api parsers; a
// malformed or out-of-range value is a usage error (exit 1), never a silent 0.
double get_double(const Args& a, const std::string& key, double fallback, double lo, double hi) {
  const auto v = a.get(key);
  if (!v) return fallback;
  double out = fallback;
  const core::Status st = api::parse_double(key, *v, lo, hi, &out);
  if (!st.is_ok()) usage(st.message());
  return out;
}

long long get_int(const Args& a, const std::string& key, long long fallback, long long lo,
                  long long hi) {
  const auto v = a.get(key);
  if (!v) return fallback;
  long long out = fallback;
  const core::Status st = api::parse_int(key, *v, lo, hi, &out);
  if (!st.is_ok()) usage(st.message());
  return out;
}

// The design knobs, parsed and range-checked into the facade's typed options.
// Driven by the shared option-spec table (api::design_option_specs), so the
// CLI flags, the NDJSON "design" object, and DesignOptions::set share one
// keyspace: adding a knob to the table adds it to every surface at once.
api::DesignOptions design_options(const Args& a) {
  api::DesignOptions d;
  for (const api::OptionSpec& spec : api::design_option_specs()) {
    const std::string flag = "--" + std::string(spec.key);
    if (spec.kind == api::OptionKind::kFlag) {
      if (a.has_flag(flag)) {
        const core::Status st = api::set_option(&d, spec.key, true);
        if (!st.is_ok()) usage(st.message());
      }
    } else if (const auto v = a.get(flag)) {
      const core::Status st = api::set_option(&d, spec.key, std::string_view(*v));
      if (!st.is_ok()) usage(st.message());
    }
  }
  return d;
}

int cmd_info(core::Platform& p) {
  const auto& b = p.benchmark();
  std::cout << b.name << "\n";
  std::cout << "  DRAM die       : " << b.stack.dram_fp.width() << " x "
            << b.stack.dram_fp.height() << " mm, " << b.stack.dram_fp.bank_count()
            << " banks, " << b.stack.num_dram_dies << " dies\n";
  std::cout << "  logic die      : " << b.stack.logic_fp.width() << " x "
            << b.stack.logic_fp.height() << " mm (" << pdn::to_string(b.baseline.mounting)
            << ")\n";
  std::cout << "  channels       : " << b.sim.channels << ", tCK " << b.sim.timing.tck_ns
            << " ns, VDD " << b.stack.tech.dram.vdd << " V\n";
  std::cout << "  default state  : " << b.default_state << "\n";
  std::cout << "  baseline       : " << b.baseline.summary() << "\n";
  std::cout << "  baseline cost  : " << util::fmt_fixed(cost::total_cost(b.baseline), 3) << "\n";
  std::cout << "  paper baseline : " << b.paper_baseline_ir_mv << " mV\n";
  return 0;
}

int cmd_simulate(core::Platform& p, const Args& a) {
  const auto cfg = design_options(a).apply(p.benchmark().baseline);
  const std::string policy = a.get("--policy").value_or("distr");
  const double limit = get_double(a, "--limit", 24.0, 0.001, 1e6);
  memctrl::PolicyConfig pc;
  if (policy == "standard") {
    pc = memctrl::standard_policy();
  } else if (policy == "fcfs") {
    pc = memctrl::ir_aware_policy(limit, memctrl::SchedulingKind::kFcfs);
  } else if (policy == "distr") {
    pc = memctrl::ir_aware_policy(limit, memctrl::SchedulingKind::kDistR);
  } else {
    usage("--policy: '" + policy + "' is not a policy (want standard | fcfs | distr)");
  }
  memctrl::SimResult r;
  if (const auto trace_path = a.get("--trace")) {
    std::ifstream tf(*trace_path);
    if (!tf) {
      std::cerr << "error: cannot open trace '" << *trace_path << "'\n";
      return kExitInputError;
    }
    auto reqs = memctrl::read_trace(tf);
    const auto& sim_cfg = p.benchmark().sim;
    const std::string problem =
        memctrl::validate_trace(reqs, sim_cfg.dies, sim_cfg.banks_per_die);
    if (!problem.empty()) {
      std::cerr << "error: trace invalid: " << problem << "\n";
      return kExitInputError;
    }
    r = p.simulate(cfg, pc, std::move(reqs));
  } else {
    r = p.simulate(cfg, pc);
  }
  std::cout << "design    : " << cfg.summary() << "\n";
  std::cout << "policy    : " << policy << (policy != "standard" ? " @ " + util::fmt_fixed(limit, 1) + " mV" : "")
            << "\n";
  if (!r.feasible) {
    std::cout << "INFEASIBLE: the IR constraint admits no memory state\n";
    return kExitInfeasible;
  }
  std::cout << "runtime   : " << util::fmt_fixed(r.runtime_us, 2) << " us (" << r.cycles
            << " cycles)\n";
  std::cout << "bandwidth : " << util::fmt_fixed(r.bandwidth_reads_per_clk, 3) << " reads/clk\n";
  std::cout << "max IR    : " << util::fmt_fixed(r.max_ir_mv, 2) << " mV\n";
  std::cout << "row hits  : " << util::fmt_percent(r.row_hit_fraction, 1) << ", avg active banks "
            << util::fmt_fixed(r.avg_active_banks, 2) << "\n";
  return 0;
}

int cmd_report(core::Platform& p, const Args& a) {
  const auto cfg = design_options(a).apply(p.benchmark().baseline);
  const auto& bench = p.benchmark();
  const std::string state_text = a.get("--state").value_or(bench.default_state);
  const double activity = get_double(a, "--activity", -1.0, -1.0, 1.0);
  const auto state = p.parse_state(state_text, activity);
  const int die =
      static_cast<int>(get_int(a, "--die", bench.stack.num_dram_dies, 1,
                               bench.stack.num_dram_dies)) - 1;  // 1-based

  const auto built = pdn::build_stack(bench.stack, cfg);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  power.dram_scale = bench.power_scale;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                    power);
  const auto report = analyzer.block_report(state, die);

  std::cout << "design : " << cfg.summary() << "\n";
  std::cout << "state  : " << state_text << ", DRAM die " << die + 1 << " (hotspots first)\n";
  util::Table t({"block", "type", "max IR (mV)", "avg IR (mV)"});
  for (const auto& entry : report) {
    t.add_row({entry.block->name, floorplan::to_string(entry.block->type),
               util::fmt_fixed(entry.max_mv, 2), util::fmt_fixed(entry.avg_mv, 2)});
  }
  std::cout << t.render();
  return 0;
}

int cmd_droop(core::Platform& p, const Args& a) {
  const auto cfg = design_options(a).apply(p.benchmark().baseline);
  const auto& bench = p.benchmark();
  const auto built = pdn::build_stack(bench.stack, cfg);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  power.dram_scale = bench.power_scale;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                    power);
  const std::string state_text = a.get("--state").value_or(bench.default_state);
  const auto state = p.parse_state(state_text, get_double(a, "--activity", -1.0, -1.0, 1.0));
  const auto sinks = analyzer.injection(state);

  transient::DecapConfig decap;
  decap.tap_decap_nf = get_double(a, "--decap", 2.0, 0.0, 1e6);
  const transient::TransientSimulator sim(
      built.model, transient::assign_node_capacitance(built.model, decap), 1e-9);
  const auto r = sim.step_response(sinks, 400e-9);
  std::cout << "design : " << cfg.summary() << "\n";
  std::cout << "state  : " << state_text << ", tap decap " << decap.tap_decap_nf << " nF\n";
  std::cout << "DC IR  : " << util::fmt_fixed(r.dc_ir_mv, 2) << " mV\n";
  std::cout << "peak   : " << util::fmt_fixed(r.peak_ir_mv, 2) << " mV\n";
  std::cout << "settle : " << util::fmt_fixed(r.settle_ns, 1) << " ns (to 2% of DC)\n";
  util::Table t({"t (ns)", "worst DRAM droop (mV)"});
  for (std::size_t k = 0; k < r.time_ns.size(); k += std::max<std::size_t>(1, r.time_ns.size() / 12)) {
    t.add_row({util::fmt_fixed(r.time_ns[k], 1), util::fmt_fixed(r.worst_ir_mv[k], 2)});
  }
  std::cout << t.render();
  return 0;
}

int cmd_profile(core::Platform& p, const Args& a) {
  // Exercise the full pipeline on the baseline design, then print where the
  // wall time went. Each stage gets a top-level span so the table groups the
  // library's internal spans under a readable root.
  const auto cfg = design_options(a).apply(p.benchmark().baseline);
  const std::size_t top_n = static_cast<std::size_t>(get_int(a, "--top", 15, 1, 100000));

  std::cout << "profiling " << p.benchmark().name << " (analyze, lut, simulate, cooptimize)\n";
  {
    PDN3D_TRACE_SPAN("profile/analyze");
    const auto r = p.analyze(cfg, p.benchmark().default_state, -1.0);
    std::cout << "  analyze    : max IR " << util::fmt_fixed(r.dram_max_mv, 2) << " mV\n";
  }
  {
    PDN3D_TRACE_SPAN("profile/lut");
    const auto& lut = p.lut(cfg);
    std::cout << "  lut        : " << lut.size() << " states, worst "
              << util::fmt_fixed(lut.worst_case_mv(), 2) << " mV\n";
  }
  {
    PDN3D_TRACE_SPAN("profile/simulate");
    const auto r = p.simulate(cfg, memctrl::ir_aware_policy(24.0, memctrl::SchedulingKind::kDistR));
    std::cout << "  simulate   : " << util::fmt_fixed(r.runtime_us, 2) << " us, "
              << (r.feasible ? "feasible" : "INFEASIBLE") << "\n";
  }
  {
    PDN3D_TRACE_SPAN("profile/cooptimize");
    auto opt = p.make_cooptimizer();
    const auto best = opt.optimize(0.3);
    std::cout << "  cooptimize : " << best.config.summary() << " @ "
              << util::fmt_fixed(best.measured_ir_mv, 2) << " mV\n";
  }
  std::cout << "\n" << obs::TraceStore::instance().profile_table(top_n);
  return 0;
}

int cmd_export(core::Platform& p, const Args& a) {
  const auto out_opt = a.get("--out");
  if (!out_opt) usage("export requires --out DIR");
  const std::filesystem::path out = *out_opt;
  std::filesystem::create_directories(out);

  const auto cfg = design_options(a).apply(p.benchmark().baseline);
  const std::string state_text = a.get("--state").value_or(p.benchmark().default_state);
  const auto state = p.parse_state(state_text, get_double(a, "--activity", -1.0, -1.0, 1.0));

  const auto& bench = p.benchmark();
  const auto built = pdn::build_stack(bench.stack, cfg);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  power.dram_scale = bench.power_scale;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                    power);
  const auto sinks = analyzer.injection(state);
  const auto ir = analyzer.ir_map(state);

  {
    std::ofstream os(out / "stack.sp");
    io::write_spice_netlist(os, built.model, sinks, {bench.name + " " + cfg.summary()});
  }
  {
    std::ofstream os(out / "ir_map.csv");
    io::write_ir_csv(os, built.model, ir);
  }
  for (int d = 0; d < built.model.dram_die_count(); ++d) {
    std::ofstream os(out / ("dram" + std::to_string(d + 1) + "_ir.pgm"), std::ios::binary);
    io::write_ir_pgm(os, built.model, ir, d, 0);
  }
  {
    std::ofstream os(out / "dram_die.csv");
    io::write_floorplan_csv(os, bench.stack.dram_fp);
  }
  {
    std::ofstream os(out / "dram_die.def");
    io::write_floorplan_def(os, bench.stack.dram_fp);
  }
  std::cout << "wrote " << out.string()
            << "/{stack.sp, ir_map.csv, dram*_ir.pgm, dram_die.csv, dram_die.def}\n";
  return 0;
}

// The pure-evaluation commands go through the facade: one EvaluateRequest in,
// the rendered output printed verbatim. `pdn3d serve` runs the exact same
// path, which is what makes served responses byte-identical to the CLI.
bool facade_operation(const std::string& command, api::Operation* out) {
  if (command == "analyze") *out = api::Operation::kEvaluate;
  else if (command == "lut") *out = api::Operation::kLut;
  else if (command == "montecarlo") *out = api::Operation::kMonteCarlo;
  else if (command == "cooptimize") *out = api::Operation::kCoOptimize;
  else if (command == "validate") *out = api::Operation::kValidate;
  else if (command == "em-check") *out = api::Operation::kEmCheck;
  else return false;
  return true;
}

int run_facade(const Args& a, api::Operation op, core::BenchmarkKind kind,
               core::Benchmark benchmark, obs::RunReportOptions* report_opts) {
  api::EvaluateRequest req;
  req.benchmark = kind;
  req.op = op;
  req.design = design_options(a);
  if (const auto v = a.get("--state")) req.state = *v;
  req.activity = get_double(a, "--activity", -1.0, -1.0, 1.0);
  req.samples = get_int(a, "--samples", 200, 1, 10000000);
  req.alpha = get_double(a, "--alpha", 0.3, 0.0, 1.0);
  if (const auto v = a.get("--checkpoint")) req.checkpoint_path = *v;
  req.resume = a.has_flag("--resume");
  const core::Status st = req.validate();
  if (!st.is_ok()) usage(st.message());

  api::Session session;
  session.install(kind, std::move(benchmark));
  const api::EvaluateResult result = session.evaluate(req);
  // Schema v6: record the canonical request fingerprint so two reports can be
  // matched as "same evaluation" without replaying the command line.
  report_opts->fingerprint = result.fingerprint;
  std::cout << result.output;
  return result.exit_code;
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

/// Serve status lines ("listening", "drained") are operational output, not
/// leveled diagnostics: they print unconditionally (scripts wait on them) but
/// honor the structured format so a `--log-format json` server emits pure
/// NDJSON on stderr.
void serve_status(std::string_view event, const std::vector<obs::EventField>& fields) {
  const std::string line =
      obs::log_format() == obs::LogFormat::kNdjson
          ? obs::render_event_ndjson(util::LogLevel::kInfo, event, fields,
                                     obs::event_timestamp())
          : obs::render_event_text(util::LogLevel::kInfo, event, fields);
  std::cerr << line << "\n";
}

int cmd_serve(const Args& a, obs::RunReportOptions* report_opts) {
  service::ServiceConfig cfg;
  cfg.queue_capacity = static_cast<std::size_t>(get_int(a, "--queue", 64, 1, 1000000));
  cfg.default_deadline_ms = get_double(a, "--deadline", 0.0, 0.0, 1e9);
  cfg.enable_test_ops = a.has_flag("--test-ops");
  cfg.max_outstanding_cost =
      static_cast<std::uint64_t>(get_int(a, "--max-cost", 0, 0, 1000000000));
  cfg.watchdog_ms = get_double(a, "--watchdog", 0.0, 0.0, 1e9);
  cfg.slow_request_ms = get_double(a, "--slow-ms", 0.0, 0.0, 1e9);
  cfg.cache_entries = static_cast<std::size_t>(get_int(a, "--cache-entries", 256, 0, 100000000));
  cfg.cache_bypass = a.has_flag("--cache-bypass");

  api::Session session;
  if (const auto tech_path = a.get("--tech")) {
    const auto bench_tok = a.get("--bench");
    if (!bench_tok) usage("serve: --tech requires --bench BENCHMARK");
    core::BenchmarkKind kind{};
    const core::Status st = api::parse_benchmark(*bench_tok, &kind);
    if (!st.is_ok()) usage(st.message());
    std::ifstream tf(*tech_path);
    if (!tf) {
      std::cerr << "error: cannot open technology file '" << *tech_path << "'\n";
      return kExitInputError;
    }
    core::Benchmark bench = core::make_benchmark(kind);
    try {
      bench.stack.tech = tech::read_technology(tf);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return kExitInputError;
    }
    session.install(kind, std::move(bench));
  }

  // Declared before the service so response sinks (which reference it) stay
  // valid for as long as any worker can still call them.
  std::mutex stdout_mutex;

  service::BatchService service(session, cfg);
  service.start();

  // Graceful drain on SIGTERM/SIGINT. No SA_RESTART: a blocked stdin read
  // returns with EINTR so the loop below observes g_stop promptly.
  struct sigaction sa = {};
  sa.sa_handler = handle_stop;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // A client that disconnects with a response in flight must surface as an
  // EPIPE write error (the sink drops the response), not as a SIGPIPE that
  // kills the server and every other client's work.
  struct sigaction ign = {};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  sigaction(SIGPIPE, &ign, nullptr);

  std::unique_ptr<service::SocketServer> socket_server;
  if (const auto path = a.get("--socket")) {
    socket_server = std::make_unique<service::SocketServer>(service, *path);
    try {
      socket_server->start();
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      service.drain();
      return kExitInputError;
    }
    serve_status("serve.listening", {{"socket", *path}});
  }

  // stdin NDJSON loop; stdout carries only response lines. With a socket the
  // server outlives stdin EOF and stops on a signal instead.
  std::string line;
  while (g_stop == 0 && std::getline(std::cin, line)) {
    if (util::trim(line).empty()) continue;
    service.submit_line(line, [&stdout_mutex](const std::string& response) {
      const std::lock_guard<std::mutex> lock(stdout_mutex);
      std::cout << response << "\n" << std::flush;
    });
  }
  if (socket_server) {
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    socket_server->stop();
  }
  service.drain();

  const auto s = service.stats();
  serve_status("serve.drained",
               {{"completed", s.completed},
                {"submitted", s.submitted},
                {"queue_full", s.rejected_full},
                {"overloaded", s.rejected_overload},
                {"deadline_exceeded", s.deadline_expired},
                {"timeout", s.timeouts},
                {"cancelled", s.cancelled},
                {"internal", s.internal_errors},
                {"too_large", s.rejected_too_large},
                {"bad", s.bad_requests},
                {"uptime_seconds", service.uptime_seconds()}});
  report_opts->session = service.session_block();
  return kExitOk;
}

int dispatch(core::Platform& platform, const Args& args) {
  if (args.command == "info") return cmd_info(platform);
  if (args.command == "simulate") return cmd_simulate(platform, args);
  if (args.command == "profile") return cmd_profile(platform, args);
  if (args.command == "report") return cmd_report(platform, args);
  if (args.command == "droop") return cmd_droop(platform, args);
  if (args.command == "export") return cmd_export(platform, args);
  usage("unknown command '" + args.command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.has_flag("--verbose")) util::set_log_level(util::LogLevel::kDebug);
  if (args.has_flag("--quiet")) util::set_log_level(util::LogLevel::kError);
  if (const auto fmt = args.get("--log-format")) {
    obs::LogFormat parsed = obs::LogFormat::kText;
    if (!obs::parse_log_format(*fmt, &parsed)) {
      usage("--log-format must be 'text' or 'json', got '" + *fmt + "'");
    }
    obs::set_log_format(parsed);
  }
  // Fault injection (PDN3D_FAULTS env var) activates before any work runs so
  // every site in the process sees the same schedule. A malformed spec is a
  // usage error: silently running fault-free would defeat the chaos harness.
  if (const std::string err = faults::Registry::instance().configure_from_env();
      !err.empty()) {
    usage("PDN3D_FAULTS: " + err);
  }
  if (args.get("--threads")) {
    const long long n = get_int(args, "--threads", 0, 1, 4096);
    // Overrides PDN3D_THREADS; every sweep (and the serve worker pool) sizes
    // itself from this.
    exec::set_default_thread_count(static_cast<std::size_t>(n));
  }

  int rc = kExitOk;
  obs::RunReportOptions report_opts;  // .session stays null for one-shot runs

  if (args.command == "serve") {
    rc = cmd_serve(args, &report_opts);
  } else {
    core::BenchmarkKind kind{};
    {
      const core::Status st = api::parse_benchmark(args.benchmark, &kind);
      if (!st.is_ok()) usage(st.message());
    }
    core::Benchmark benchmark = core::make_benchmark(kind);

    if (const auto tech_path = args.get("--tech")) {
      std::ifstream tf(*tech_path);
      if (!tf) {
        std::cerr << "error: cannot open technology file '" << *tech_path << "'\n";
        rc = kExitInputError;
      } else {
        try {
          benchmark.stack.tech = tech::read_technology(tf);
        } catch (const std::exception& e) {
          std::cerr << "error: " << e.what() << "\n";
          rc = kExitInputError;
        }
      }
    }

    if (rc == kExitOk) {
      api::Operation op{};
      if (facade_operation(args.command, &op)) {
        rc = run_facade(args, op, kind, std::move(benchmark), &report_opts);
      } else {
        core::Platform platform(std::move(benchmark));
        try {
          rc = dispatch(platform, args);
        } catch (const core::ValidationError& e) {
          std::cerr << "error: mesh validation failed:\n" << e.report().to_string() << "\n";
          rc = kExitNumerical;
        } catch (const core::NumericalError& e) {
          std::cerr << "error: " << e.status().to_string() << "\n";
          rc = kExitNumerical;
        } catch (const std::exception& e) {
          std::cerr << "error: " << e.what() << "\n";
          rc = kExitInputError;
        }
      }
    }
  }

  // The report is written even after a failed command: a run that escalated
  // or exhausted the ladder is exactly the run worth dissecting.
  if (const auto report_path = args.get("--report")) {
    report_opts.command = args.command;
    report_opts.benchmark = args.benchmark;
    report_opts.argv.assign(argv, argv + argc);
    const core::Status st = obs::write_run_report(*report_path, report_opts);
    if (!st.is_ok()) {
      std::cerr << "error: " << st.to_string() << "\n";
      if (rc == kExitOk) rc = kExitInputError;
    }
  }
  return rc;
}
